// Arithmetic Attribute Constraint Summary (paper §3.1, fig 4).
//
// One Aacs summarizes every arithmetic constraint that any subscription
// places on ONE attribute. It maintains a canonical partition of the real
// line into disjoint pieces; each piece carries the sorted list of
// subscription ids whose constraint is satisfied by *every* value in the
// piece. Point pieces correspond to the paper's AACS_E array (equality
// values outside the sub-ranges); non-point pieces are the AACS_SR rows.
//
// Because conjunctive constraints on the same attribute are intersected
// into an IntervalSet before insertion (see BrokerSummary), lookup by event
// value is EXACT for arithmetic attributes: an id is returned iff the value
// satisfies the subscription's full constraint set on this attribute.
// A value can hit at most one piece, so an id is never double-counted.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/interval.h"
#include "model/sub_id.h"

namespace subsum::core {

/// How incoming constraint regions combine with existing rows.
///
///  kExact  -- split pieces at the boundaries so lookups are exact for
///             arithmetic attributes (the refinement this library defaults
///             to).
///  kCoarse -- the paper's rule: a constraint whose region is INCLUDED in
///             an existing sub-range row only appends its id to that row
///             ("if it is not included in the existing sub-ranges or
///             equality values, a new row is added"). Rows then stay at
///             ~nsr per attribute and only the id lists grow, at the cost
///             of arithmetic false positives (cleaned up by the owner's
///             exact re-filter, like SACS).
enum class AacsMode : uint8_t {
  kExact = 0,
  kCoarse = 1,
};

class Aacs {
 public:
  Aacs() = default;
  explicit Aacs(AacsMode mode) : mode_(mode) {}

  [[nodiscard]] AacsMode mode() const noexcept { return mode_; }
  /// One row: a disjoint piece of the value space plus its id list.
  struct Piece {
    Interval iv;
    std::vector<model::SubId> ids;  // sorted, unique

    bool operator==(const Piece&) const = default;
  };

  /// Adds ids to the region covered by `iv`, splitting existing pieces at
  /// the boundaries so the partition stays disjoint and canonical.
  /// `ids` must be sorted and unique.
  void insert(const Interval& iv, std::span<const model::SubId> ids);

  /// Adds one subscription's (already conjunctively-intersected) constraint
  /// region. An empty set inserts nothing (unsatisfiable constraint).
  void insert(const IntervalSet& region, model::SubId id);

  /// Removes a subscription id from every piece; empty pieces disappear and
  /// neighbouring pieces with identical lists coalesce.
  void remove(model::SubId id);

  /// Removes every id owned by `broker` (all ids with c1 == broker): the
  /// epoch-based discard of a restarted broker's pre-crash rows.
  void remove_broker(model::BrokerId broker);

  /// Ids whose summarized constraint is satisfied by `x`, or nullptr if the
  /// value falls outside every piece. O(log n).
  [[nodiscard]] const std::vector<model::SubId>* find(double x) const noexcept;

  /// Folds another attribute's summary for the SAME attribute into this one
  /// (multi-broker merge, paper §4.1).
  void merge(const Aacs& other);

  [[nodiscard]] const std::vector<Piece>& pieces() const noexcept { return pieces_; }
  [[nodiscard]] bool empty() const noexcept { return pieces_.empty(); }

  /// Row counts in the paper's terminology: nsr = sub-range rows,
  /// ne = equality rows.
  [[nodiscard]] size_t nsr() const noexcept;
  [[nodiscard]] size_t ne() const noexcept;

  /// Total number of subscription-id entries across all rows (Σ La).
  [[nodiscard]] size_t id_entries() const noexcept;

  [[nodiscard]] std::string to_string() const;

  /// Equality compares the rows only, not the insertion mode.
  bool operator==(const Aacs& o) const { return pieces_ == o.pieces_; }

 private:
  void coalesce(size_t begin_hint, size_t end_hint);

  AacsMode mode_ = AacsMode::kExact;
  std::vector<Piece> pieces_;  // sorted by iv.lo, pairwise disjoint
};

}  // namespace subsum::core
