// Summary-quality probes: live measurement of the paper's precision-vs-cost
// trade (§5.1) on a running system.
//
// Summaries over-approximate (SACS generalization, coarse AACS), so the
// interesting runtime question is not "does matching work" but "how much
// precision are we paying away right now". Three probes answer it:
//
//  * Shadow sampling (QualityProbe): for a deterministic fraction of events
//    — chosen by a content hash, so the sampled set is identical across
//    runs, shardings, and brokers — the caller re-runs the exact per-
//    subscription oracle next to the summary match and records candidate
//    vs exact counts. Exported: `subsum_quality_sampled_events_total`,
//    `subsum_summary_false_positive_ids_total`, `subsum_summary_precision`
//    (cumulative exact/candidate ratio), and an engine-vs-reference
//    divergence counter (always expected 0; a nonzero value means
//    match_into() and match_reference() disagree — a matcher bug, not a
//    summary-precision artifact).
//
//  * Row occupancy (export_row_occupancy): per-attribute histograms of ids
//    per AACS piece / SACS row. A coarse or aggressively-generalized
//    summary concentrates many ids on few rows; the occupancy distribution
//    makes that visible per attribute before the FP rate shows it.
//
//  * Model drift (export_model_drift): actual wire bytes vs the paper's
//    analytic size prediction (equations (1)-(2)), recomputed on every
//    rebuild/merge. `subsum_summary_model_drift_ratio` = actual / predicted;
//    1.0 means the analytic model tracks reality.
//
// Everything here is exact bookkeeping on top of the PR-4 MetricsRegistry;
// under -DSUBSUM_NO_TELEMETRY should_sample() is a constant false, so the
// oracle shadow work is dead code and compiles out of the hot path.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/serialize.h"
#include "core/summary.h"
#include "model/event.h"
#include "obs/metrics.h"

namespace subsum::core {

/// Deterministic content hash of an event: depends only on the (attr,
/// value) pairs, not on identity, arrival order, or process. Used to pick
/// the shadow-sampled subset so every broker — and every rerun — samples
/// exactly the same events.
uint64_t event_hash(const model::Event& event) noexcept;

/// Shadow-sampling configuration. An event is sampled iff the low `shift`
/// bits of event_hash() are zero, i.e. a deterministic 1-in-2^shift
/// fraction (default 1/64). shift 0 samples everything.
struct SampleConfig {
  uint32_t shift = 6;

  [[nodiscard]] bool selects(uint64_t hash) const noexcept {
    return (hash & ((uint64_t{1} << shift) - 1)) == 0;
  }
};

/// Live false-positive probe. Construct once next to a MetricsRegistry
/// (handles are pre-registered and stable); call should_sample() per event
/// and, when it returns true, run the exact oracle and call record().
/// All mutation is relaxed-atomic via the registry handles, so concurrent
/// publish shards may share one probe; totals are commutative.
class QualityProbe {
 public:
  QualityProbe(obs::MetricsRegistry& reg, SampleConfig cfg = {});

  /// True when this event belongs to the deterministic shadow sample.
  /// Constant false under SUBSUM_NO_TELEMETRY, making the caller's oracle
  /// branch dead code.
  [[nodiscard]] bool should_sample(const model::Event& event) const noexcept {
#ifdef SUBSUM_NO_TELEMETRY
    (void)event;
    return false;
#else
    return cfg_.selects(event_hash(event));
#endif
  }

  /// Records one sampled event: `candidate_ids` = summary-level matches
  /// (superset, may contain false positives), `exact_ids` = oracle matches.
  /// `engine_diverged` flags a match_into() vs match_reference() mismatch.
  /// Requires candidate_ids >= exact_ids (summaries never lose matches);
  /// violations are clamped and counted as divergence.
  /// (const: mutation happens through the stable registry handles, so a
  /// probe may be shared by const publish paths.)
  void record(size_t candidate_ids, size_t exact_ids, bool engine_diverged = false) const noexcept;

  [[nodiscard]] const SampleConfig& config() const noexcept { return cfg_; }

  /// Cumulative exact/candidate ratio over all sampled events so far
  /// (1.0 before any candidate id has been seen).
  [[nodiscard]] double precision() const noexcept;

 private:
  SampleConfig cfg_;
  obs::Counter* sampled_;      // subsum_quality_sampled_events_total
  obs::Counter* candidates_;   // subsum_quality_candidate_ids_total
  obs::Counter* exact_;        // subsum_quality_exact_ids_total
  obs::Counter* false_pos_;    // subsum_summary_false_positive_ids_total
  obs::Counter* divergence_;   // subsum_quality_engine_divergence_total
  obs::FGauge* precision_g_;   // subsum_summary_precision
};

/// Re-exports the per-attribute row-occupancy histograms
/// `subsum_summary_row_ids{attr="<name>"}` (one observation per row, value
/// = the row's id-list length). The distribution is a snapshot of the
/// summary, not an accumulation: each histogram is reset and repopulated,
/// so call this from the admin path (rebuild/merge/scrape), never per event.
/// A non-empty `broker` adds a `broker="..."` label (SimSystem runs all
/// brokers against one registry; BrokerNode leaves it empty).
void export_row_occupancy(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          std::string_view broker = {});

/// Recomputes the wire-vs-model gauges for `summary`:
///   subsum_summary_wire_bytes        actual encode_summary() size
///   subsum_summary_model_bytes       equations (1)-(2) prediction
///   subsum_summary_model_drift_ratio wire / model (0 when model is 0)
/// Returns the drift ratio. Call on every rebuild/merge (admin path; this
/// encodes the summary to measure it). A non-empty `broker` labels the
/// gauges `{broker="..."}`.
double export_model_drift(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          const WireConfig& wire, const PaperSizeParams& params = {},
                          std::string_view broker = {});

/// Shard-balance exports for the summary's frozen match index (PR-6):
///   subsum_match_shards                    gauge, shard count (0: no index)
///   subsum_match_shard_visits_total        counter {shard=}, counter sweeps,
///                                          folded from the index's drained
///                                          visit deltas (monotone across
///                                          rebuilds)
///   subsum_match_shard_entries             gauge {shard=}, id entries laid
///                                          out in the shard
///   subsum_summary_shard_row_ids           histogram {shard=}, ids-per-row
///                                          occupancy within the shard
///                                          (snapshot: reset + repopulated)
/// Uses frozen_if_built() — a scrape never triggers a freeze. Call next to
/// export_row_occupancy on the admin/scrape path; a non-empty `broker`
/// adds a broker="..." label.
void export_shard_metrics(obs::MetricsRegistry& reg, const BrokerSummary& summary,
                          std::string_view broker = {});

}  // namespace subsum::core
