// Per-broker subscription summaries (paper §3) and multi-broker summaries
// (paper §4.1).
//
// A BrokerSummary is the paradigm's central object: incoming subscriptions
// are DISSOLVED into their attribute constraints, which are merged into the
// per-attribute AACS/SACS structures; the subscription itself is not stored
// here ("there are no subscription entities, only subscription summaries").
//
// Conjunctive arithmetic constraints on one attribute are intersected into
// a single IntervalSet before insertion, so AACS lookups are exact.
// String constraints go through SACS generalization and are conservatively
// over-approximated. End-to-end exactness is restored at the subscription's
// home broker (which keeps the OwnedSubscription anyway, to know the
// consumer).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/aacs.h"
#include "core/sacs.h"
#include "model/event.h"
#include "model/schema.h"
#include "model/subscription.h"

namespace subsum::core {

class FrozenIndex;

/// Row/size statistics in the paper's symbols (table 1).
struct SummaryStats {
  size_t nsr = 0;         // Σ over arithmetic attributes of sub-range rows
  size_t ne = 0;          // Σ of equality rows
  size_t nr = 0;          // Σ over string attributes of SACS rows
  size_t la_entries = 0;  // Σ La: id entries across AACS rows
  size_t ls_entries = 0;  // Σ Ls: id entries across SACS rows
  size_t value_bytes = 0;  // Σ ssv: bytes of SACS string operands
};

class BrokerSummary {
 public:
  BrokerSummary() = default;
  /// The summary keeps a pointer to `schema`, which must outlive it;
  /// binding a temporary is rejected at compile time.
  explicit BrokerSummary(const model::Schema& schema,
                         GeneralizePolicy policy = GeneralizePolicy::kSafe,
                         AacsMode arith_mode = AacsMode::kExact);
  explicit BrokerSummary(model::Schema&&, GeneralizePolicy = GeneralizePolicy::kSafe,
                         AacsMode = AacsMode::kExact) = delete;

  // The frozen-index handle is an atomic<shared_ptr>, so the special
  // members are user-defined (out of line: FrozenIndex is incomplete
  // here). Copies share the immutable index; the moved-from summary
  // drops its handle.
  BrokerSummary(const BrokerSummary& o);
  BrokerSummary& operator=(const BrokerSummary& o);
  BrokerSummary(BrokerSummary&& o) noexcept;
  BrokerSummary& operator=(BrokerSummary&& o) noexcept;
  ~BrokerSummary();

  /// Dissolves a subscription into the summary. The id's c3 mask must equal
  /// the subscription's attribute mask (checked, throws std::invalid_argument).
  void add(const model::Subscription& sub, model::SubId id);

  /// Removes one subscription id from every structure its c3 mask touches.
  void remove(model::SubId id);

  /// Removes every id owned by `broker` from every structure: the
  /// epoch-based anti-entropy discard applied when a peer announces a
  /// newer incarnation (its pre-crash rows are replaced by the fresh
  /// image merged right after).
  void remove_broker(model::BrokerId broker);

  /// Folds another broker's summary into this one (multi-broker merge).
  /// Schemata must agree.
  void merge(const BrokerSummary& other);

  /// Low-level row insertion, used by the wire decoder. `ids` must be
  /// sorted and unique; the attribute's type must fit the structure.
  void insert_arith(model::AttrId id, const Interval& iv, std::span<const model::SubId> ids);
  void insert_string(model::AttrId id, const StringPattern& p,
                     std::span<const model::SubId> ids);

  /// Drops all rows.
  void clear();

  /// Exact-rebuild maintenance path: reconstructs the summary from a home
  /// broker's subscription table, shedding any accumulated SACS
  /// generalization slack after heavy unsubscription churn.
  static BrokerSummary rebuild(const model::Schema& schema, GeneralizePolicy policy,
                               const std::vector<model::OwnedSubscription>& subs,
                               AacsMode arith_mode = AacsMode::kExact);

  /// Dynamic schema extension (paper §6 future work): migrates the summary
  /// to a schema that appends attributes to the current one. Existing
  /// attribute ids — and the bit positions in every issued c3 — are
  /// preserved, so all rows and subscription ids carry over verbatim.
  /// `wider` must outlive the returned summary. Throws
  /// std::invalid_argument if it is not an extension of this schema.
  [[nodiscard]] BrokerSummary with_schema(const model::Schema& wider) const;

  [[nodiscard]] const model::Schema& schema() const noexcept { return *schema_; }
  [[nodiscard]] GeneralizePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] AacsMode arith_mode() const noexcept { return arith_mode_; }

  /// Per-attribute structure access (type-checked).
  [[nodiscard]] const Aacs& aacs(model::AttrId id) const;
  [[nodiscard]] const Sacs& sacs(model::AttrId id) const;

  /// True when no rows exist at all.
  [[nodiscard]] bool empty() const noexcept;

  [[nodiscard]] SummaryStats stats() const noexcept;

  [[nodiscard]] std::string to_string() const;

  /// Monotone mutation stamp, minted from a process-global counter by
  /// every mutator. A FrozenIndex built at version V is fresh exactly
  /// while version() == V.
  [[nodiscard]] uint64_t version() const noexcept { return version_; }

  /// Approximate Σ id entries across all rows, maintained incrementally
  /// (exactly refreshed on the admin-path mutators). Heuristic input to
  /// the frozen-index threshold only.
  [[nodiscard]] size_t approx_id_entries() const noexcept { return approx_id_entries_; }

  /// The frozen index for the matching path, or null when the classic
  /// engine should run (summary below IndexOptions::min_id_entries, too
  /// large for the slot space, or stale pending an amortized rebuild).
  /// Builds lazily; concurrent callers may race to build, last store
  /// wins and both results are valid. Const because all mutation is
  /// through atomics — safe from concurrent match paths.
  [[nodiscard]] std::shared_ptr<const FrozenIndex> frozen_for_match() const;

  /// The current index if one is built, fresh, and usable — never
  /// builds. For exporters/introspection (scrape must not freeze).
  [[nodiscard]] std::shared_ptr<const FrozenIndex> frozen_if_built() const;

  bool operator==(const BrokerSummary& o) const {
    return aacs_ == o.aacs_ && sacs_ == o.sacs_;
  }

 private:
  /// Stamps a new version and resets the dirty-match rebuild counter;
  /// called by every mutator (the stale index itself is left in place —
  /// frozen_for_match() sees the version mismatch and sidesteps it).
  void bump_version() noexcept;

  const model::Schema* schema_ = nullptr;
  GeneralizePolicy policy_ = GeneralizePolicy::kSafe;
  AacsMode arith_mode_ = AacsMode::kExact;
  std::vector<Aacs> aacs_;  // indexed by AttrId; unused slots for string attrs
  std::vector<Sacs> sacs_;  // indexed by AttrId; unused slots for arithmetic attrs

  uint64_t version_ = 0;          // 0 = default-constructed, never indexed
  size_t approx_id_entries_ = 0;  // incremental; see approx_id_entries()
  /// Matches served by the classic engine while the index was stale;
  /// once it crosses the rebuild threshold the next match re-freezes.
  mutable std::atomic<uint64_t> dirty_matches_{0};
  mutable std::atomic<std::shared_ptr<const FrozenIndex>> index_{};
};

}  // namespace subsum::core
