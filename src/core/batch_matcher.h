// Batched, parallel event matching (the throughput face of Algorithm 1).
//
// BatchMatcher shards a span of events into one contiguous chunk per pool
// worker; each shard runs match_into() with its own persistent
// MatchScratch, so a warmed-up matcher allocates nothing per event beyond
// the result vectors it hands back. Events are independent, so results are
// identical to calling match() per event in order regardless of thread
// count (see tests/test_match_parallel.cpp).
#pragma once

#include <span>
#include <vector>

#include "core/matcher.h"
#include "util/thread_pool.h"

namespace subsum::core {

class BatchMatcher {
 public:
  /// The pool is borrowed and must outlive the matcher.
  explicit BatchMatcher(util::ThreadPool& pool) : pool_(&pool) {}

  /// Matches every event against `summary`. `results` is resized to
  /// events.size(); results[i] holds event i's sorted matched ids (existing
  /// capacity is reused across calls). With `diags`, diags[i] carries the
  /// per-event MatchDiag. Not reentrant: one batch at a time per matcher.
  void match_batch(const BrokerSummary& summary, std::span<const model::Event> events,
                   std::vector<std::vector<model::SubId>>& results,
                   std::vector<MatchDiag>* diags = nullptr);

  /// Convenience overload allocating the result vectors.
  [[nodiscard]] std::vector<std::vector<model::SubId>> match_batch(
      const BrokerSummary& summary, std::span<const model::Event> events,
      std::vector<MatchDiag>* diags = nullptr);

 private:
  util::ThreadPool* pool_;
  std::vector<MatchScratch> scratch_;  // one per shard, persistent across batches
};

}  // namespace subsum::core
