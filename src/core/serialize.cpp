#include "core/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace subsum::core {

namespace {

constexpr uint8_t kVersion = 2;       // v2 adds the u64 epoch stamp
constexpr uint8_t kVersionNoEpoch = 1;  // pre-epoch images still decode

constexpr uint8_t kLoInf = 1 << 4;
constexpr uint8_t kHiInf = 1 << 5;
constexpr uint8_t kPoint = 1 << 6;

void put_numeric(util::BufWriter& w, double v, uint8_t width) {
  if (width == 8) {
    w.put_f64(v);
    return;
  }
  // Narrow to float32; reject integral values that do not survive the trip
  // (the paper's sst = 4 assumes 32-bit values).
  const auto f = static_cast<float>(v);
  if (std::isfinite(v) && std::nearbyint(v) == v &&
      std::abs(v) > static_cast<double>(std::numeric_limits<int32_t>::max()) ) {
    throw std::range_error("numeric value does not fit the 4-byte wire width");
  }
  uint32_t bits;
  static_assert(sizeof bits == sizeof f);
  std::memcpy(&bits, &f, sizeof bits);
  w.put_u32(bits);
}

double get_numeric(util::BufReader& r, uint8_t width) {
  if (width == 8) return r.get_f64();
  const uint32_t bits = r.get_u32();
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return static_cast<double>(f);
}

void put_id(util::BufWriter& w, const model::SubIdCodec& codec, const model::SubId& id) {
  __uint128_t bits = codec.pack(id);
  for (size_t i = 0; i < codec.encoded_size(); ++i) {
    w.put_u8(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

model::SubId get_id(util::BufReader& r, const model::SubIdCodec& codec) {
  __uint128_t bits = 0;
  for (size_t i = 0; i < codec.encoded_size(); ++i) {
    bits |= static_cast<__uint128_t>(r.get_u8()) << (8 * i);
  }
  return codec.unpack(bits);
}

void put_ids(util::BufWriter& w, const model::SubIdCodec& codec,
             const std::vector<model::SubId>& ids) {
  w.put_varint(ids.size());
  for (const auto& id : ids) put_id(w, codec, id);
}

std::vector<model::SubId> get_ids(util::BufReader& r, const model::SubIdCodec& codec) {
  const uint64_t n = r.get_varint();
  if (n > r.remaining()) throw util::DecodeError("id list longer than payload");
  std::vector<model::SubId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) ids.push_back(get_id(r, codec));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<std::byte> encode_summary(const BrokerSummary& summary, const WireConfig& cfg,
                                      uint64_t epoch) {
  if (cfg.numeric_width != 4 && cfg.numeric_width != 8) {
    throw std::invalid_argument("numeric_width must be 4 or 8");
  }
  const model::Schema& schema = summary.schema();
  util::BufWriter w(1024);
  w.put_u8(kVersion);
  w.put_u64(epoch);
  w.put_u8(cfg.numeric_width);
  w.put_u8(static_cast<uint8_t>(cfg.codec.c1_bits()));
  w.put_u8(static_cast<uint8_t>(cfg.codec.c2_bits()));
  w.put_u8(static_cast<uint8_t>(cfg.codec.c3_bits()));
  w.put_varint(schema.attr_count());

  for (model::AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      const Aacs& aacs = summary.aacs(a);
      w.put_varint(aacs.pieces().size());
      for (const auto& p : aacs.pieces()) {
        uint8_t flags = static_cast<uint8_t>((p.iv.lo.o + 1) | ((p.iv.hi.o + 1) << 2));
        const bool lo_inf = std::isinf(p.iv.lo.v);
        const bool hi_inf = std::isinf(p.iv.hi.v);
        const bool point = p.iv.is_point();
        if (lo_inf) flags |= kLoInf;
        if (hi_inf) flags |= kHiInf;
        if (point) flags |= kPoint;
        w.put_u8(flags);
        if (!lo_inf) put_numeric(w, p.iv.lo.v, cfg.numeric_width);
        if (!hi_inf && !point) put_numeric(w, p.iv.hi.v, cfg.numeric_width);
        put_ids(w, cfg.codec, p.ids);
      }
    } else {
      const Sacs& sacs = summary.sacs(a);
      w.put_varint(sacs.rows().size());
      for (const auto& row : sacs.rows()) {
        w.put_u8(static_cast<uint8_t>(row.pattern.op));
        w.put_string(row.pattern.operand);
        put_ids(w, cfg.codec, row.ids);
      }
    }
  }
  return std::move(w).take();
}

BrokerSummary decode_summary(std::span<const std::byte> data, const model::Schema& schema,
                             GeneralizePolicy policy, AacsMode arith_mode,
                             uint64_t* epoch_out) {
  util::BufReader r(data);
  const uint8_t version = r.get_u8();
  if (version != kVersion && version != kVersionNoEpoch) {
    throw util::DecodeError("unknown summary version");
  }
  const uint64_t epoch = version == kVersion ? r.get_u64() : 0;
  if (epoch_out) *epoch_out = epoch;
  const uint8_t width = r.get_u8();
  if (width != 4 && width != 8) throw util::DecodeError("bad numeric width");
  const uint8_t c1 = r.get_u8();
  const uint8_t c2 = r.get_u8();
  const uint8_t c3 = r.get_u8();
  const model::SubIdCodec codec(
      c1 >= 64 ? ~uint32_t{0} : (uint32_t{1} << c1),
      c2 >= 64 ? ~uint64_t{0} : (uint64_t{1} << c2), c3);
  if (codec.c1_bits() != c1 || codec.c2_bits() != c2) {
    throw util::DecodeError("inconsistent codec parameters");
  }
  if (r.get_varint() != schema.attr_count()) {
    throw util::DecodeError("summary schema attribute count mismatch");
  }

  BrokerSummary out(schema, policy, arith_mode);
  for (model::AttrId a = 0; a < schema.attr_count(); ++a) {
    const uint64_t rows = r.get_varint();
    if (is_arithmetic(schema.type_of(a))) {
      for (uint64_t i = 0; i < rows; ++i) {
        const uint8_t flags = r.get_u8();
        Pos lo{-std::numeric_limits<double>::infinity(), 0};
        Pos hi{std::numeric_limits<double>::infinity(), 0};
        lo.o = static_cast<int8_t>((flags & 0x3) - 1);
        hi.o = static_cast<int8_t>(((flags >> 2) & 0x3) - 1);
        if (!(flags & kLoInf)) lo.v = get_numeric(r, width);
        if (flags & kPoint) {
          hi = lo;
        } else if (!(flags & kHiInf)) {
          hi.v = get_numeric(r, width);
        }
        if (hi < lo) throw util::DecodeError("empty AACS piece on the wire");
        const auto ids = get_ids(r, codec);
        out.insert_arith(a, Interval{lo, hi}, ids);
      }
    } else {
      for (uint64_t i = 0; i < rows; ++i) {
        const auto op = static_cast<model::Op>(r.get_u8());
        if (!model::op_valid_for(op, model::AttrType::kString)) {
          throw util::DecodeError("bad SACS operator on the wire");
        }
        StringPattern p{op, r.get_string()};
        const auto ids = get_ids(r, codec);
        out.insert_string(a, p, ids);
      }
    }
  }
  if (!r.done()) throw util::DecodeError("trailing bytes after summary");
  return out;
}

size_t wire_size(const BrokerSummary& summary, const WireConfig& cfg) {
  return encode_summary(summary, cfg).size();
}

PaperSize paper_size(const SummaryStats& stats, const PaperSizeParams& params,
                     bool measured_ssv) {
  PaperSize out;
  out.aacs_bytes = (2 * stats.nsr + stats.ne) * params.sst + stats.la_entries * params.sid;
  const size_t sv = measured_ssv ? stats.value_bytes : stats.nr * params.ssv;
  out.sacs_bytes = sv + stats.ls_entries * params.sid;
  return out;
}

}  // namespace subsum::core
