#include "core/delta.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace subsum::core {

namespace {

using model::SubId;

constexpr uint8_t kDeltaVersion = 1;  // delta format v1 (ships in PROTOCOL v4 frames)

// Arith row-key flags, same layout as the full-image format plus a drop bit.
constexpr uint8_t kLoInf = 1 << 4;
constexpr uint8_t kHiInf = 1 << 5;
constexpr uint8_t kPoint = 1 << 6;
constexpr uint8_t kDrop = 1 << 7;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t fnv_bytes(uint64_t h, const void* data, size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv_u64(uint64_t h, uint64_t v) noexcept { return fnv_bytes(h, &v, sizeof v); }

uint64_t fnv_f64(uint64_t h, double v) noexcept {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv_u64(h, bits);
}

uint64_t hash_ids(uint64_t h, const std::vector<SubId>& ids) noexcept {
  h = fnv_u64(h, ids.size());
  for (const auto& id : ids) {
    h = fnv_u64(h, id.broker);
    h = fnv_u64(h, id.local);
    h = fnv_u64(h, id.attrs);
  }
  return h;
}

uint64_t hash_arith_row(model::AttrId a, const SummaryImage::ArithRow& row) noexcept {
  uint64_t h = fnv_u64(kFnvOffset, a);
  h = fnv_bytes(h, "A", 1);
  h = fnv_f64(h, row.iv.lo.v);
  h = fnv_u64(h, static_cast<uint64_t>(row.iv.lo.o + 1));
  h = fnv_f64(h, row.iv.hi.v);
  h = fnv_u64(h, static_cast<uint64_t>(row.iv.hi.o + 1));
  return hash_ids(h, row.ids);
}

uint64_t hash_string_row(model::AttrId a, const SummaryImage::StringRow& row) noexcept {
  uint64_t h = fnv_u64(kFnvOffset, a);
  h = fnv_bytes(h, "S", 1);
  h = fnv_u64(h, static_cast<uint64_t>(row.pattern.op));
  h = fnv_u64(h, row.pattern.operand.size());
  h = fnv_bytes(h, row.pattern.operand.data(), row.pattern.operand.size());
  return hash_ids(h, row.ids);
}

// Row-key orderings (images keep rows sorted by key; diff merge-joins on it).
bool arith_key_less(const Interval& a, const Interval& b) noexcept {
  if (a.lo != b.lo) return a.lo < b.lo;
  return a.hi < b.hi;
}

void put_numeric(util::BufWriter& w, double v, uint8_t width) {
  if (width == 8) {
    w.put_f64(v);
    return;
  }
  const auto f = static_cast<float>(v);
  if (std::isfinite(v) && std::nearbyint(v) == v &&
      std::abs(v) > static_cast<double>(std::numeric_limits<int32_t>::max())) {
    throw std::range_error("numeric value does not fit the 4-byte wire width");
  }
  uint32_t bits;
  static_assert(sizeof bits == sizeof f);
  std::memcpy(&bits, &f, sizeof bits);
  w.put_u32(bits);
}

double get_numeric(util::BufReader& r, uint8_t width) {
  if (width == 8) return r.get_f64();
  const uint32_t bits = r.get_u32();
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return static_cast<double>(f);
}

void put_id(util::BufWriter& w, const model::SubIdCodec& codec, const SubId& id) {
  __uint128_t bits = codec.pack(id);
  for (size_t i = 0; i < codec.encoded_size(); ++i) {
    w.put_u8(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

SubId get_id(util::BufReader& r, const model::SubIdCodec& codec) {
  __uint128_t bits = 0;
  for (size_t i = 0; i < codec.encoded_size(); ++i) {
    bits |= static_cast<__uint128_t>(r.get_u8()) << (8 * i);
  }
  return codec.unpack(bits);
}

void put_ids(util::BufWriter& w, const model::SubIdCodec& codec, const std::vector<SubId>& ids) {
  w.put_varint(ids.size());
  for (const auto& id : ids) put_id(w, codec, id);
}

std::vector<SubId> get_ids(util::BufReader& r, const model::SubIdCodec& codec) {
  const uint64_t n = r.get_varint();
  if (n > r.remaining()) throw util::DecodeError("id list longer than payload");
  std::vector<SubId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) ids.push_back(get_id(r, codec));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<SubId> id_union(const std::vector<SubId>& a, const std::vector<SubId>& b) {
  std::vector<SubId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<SubId> id_difference(const std::vector<SubId>& a, const std::vector<SubId>& b) {
  std::vector<SubId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// Diffs two sorted row vectors into edits. KeyLess orders rows; MakeEdit
// builds an edit from (key-holder row, drop, add, del).
template <typename Row, typename Edit, typename KeyLess>
void diff_rows(const std::vector<Row>& base, const std::vector<Row>& target,
               std::vector<Edit>& out, KeyLess less) {
  size_t i = 0, j = 0;
  while (i < base.size() || j < target.size()) {
    if (j == target.size() || (i < base.size() && less(base[i], target[j]))) {
      Edit e;
      e.key_from(base[i]);
      e.drop = true;
      out.push_back(std::move(e));
      ++i;
    } else if (i == base.size() || less(target[j], base[i])) {
      Edit e;
      e.key_from(target[j]);
      e.add = target[j].ids;
      out.push_back(std::move(e));
      ++j;
    } else {
      if (base[i].ids != target[j].ids) {
        Edit e;
        e.key_from(target[j]);
        e.add = id_difference(target[j].ids, base[i].ids);
        e.del = id_difference(base[i].ids, target[j].ids);
        out.push_back(std::move(e));
      }
      ++i;
      ++j;
    }
  }
}

}  // namespace

bool SummaryImage::empty() const noexcept {
  for (const auto& v : arith) {
    if (!v.empty()) return false;
  }
  for (const auto& v : strings) {
    if (!v.empty()) return false;
  }
  return true;
}

size_t SummaryImage::row_count() const noexcept {
  size_t n = 0;
  for (const auto& v : arith) n += v.size();
  for (const auto& v : strings) n += v.size();
  return n;
}

size_t SummaryImage::id_entries() const noexcept {
  size_t n = 0;
  for (const auto& v : arith) {
    for (const auto& r : v) n += r.ids.size();
  }
  for (const auto& v : strings) {
    for (const auto& r : v) n += r.ids.size();
  }
  return n;
}

bool SummaryDelta::empty() const noexcept {
  for (const auto& v : arith) {
    if (!v.empty()) return false;
  }
  for (const auto& v : strings) {
    if (!v.empty()) return false;
  }
  return true;
}

size_t SummaryDelta::edit_count() const noexcept {
  size_t n = 0;
  for (const auto& v : arith) n += v.size();
  for (const auto& v : strings) n += v.size();
  return n;
}

SummaryImage extract_image(const BrokerSummary& s) {
  const model::Schema& schema = s.schema();
  SummaryImage img;
  img.arith.resize(schema.attr_count());
  img.strings.resize(schema.attr_count());
  for (model::AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      const auto& pieces = s.aacs(a).pieces();
      auto& rows = img.arith[a];
      rows.reserve(pieces.size());
      // Aacs pieces are already sorted by lo and pairwise disjoint.
      for (const auto& p : pieces) rows.push_back({p.iv, p.ids});
    } else {
      const Sacs& sacs = s.sacs(a);
      auto& rows = img.strings[a];
      rows.reserve(sacs.nr());
      for (const auto& row : sacs.eq_rows()) rows.push_back({row.pattern, row.ids});
      for (const auto& row : sacs.pat_rows()) rows.push_back({row.pattern, row.ids});
      std::sort(rows.begin(), rows.end(),
                [](const SummaryImage::StringRow& x, const SummaryImage::StringRow& y) {
                  return x.pattern < y.pattern;
                });
    }
  }
  return img;
}

BrokerSummary build_summary(const SummaryImage& img, const model::Schema& schema,
                            GeneralizePolicy policy, AacsMode arith_mode) {
  BrokerSummary out(schema, policy, arith_mode);
  merge_into_summary(img, out);
  return out;
}

void merge_into_summary(const SummaryImage& img, BrokerSummary& out) {
  for (model::AttrId a = 0; a < img.arith.size(); ++a) {
    for (const auto& row : img.arith[a]) out.insert_arith(a, row.iv, row.ids);
  }
  for (model::AttrId a = 0; a < img.strings.size(); ++a) {
    for (const auto& row : img.strings[a]) out.insert_string(a, row.pattern, row.ids);
  }
}

uint64_t image_digest(const SummaryImage& img) noexcept {
  // Commutative fold: row order (and thus build history) cannot matter.
  uint64_t d = 0;
  for (model::AttrId a = 0; a < img.arith.size(); ++a) {
    for (const auto& row : img.arith[a]) d += hash_arith_row(a, row);
  }
  for (model::AttrId a = 0; a < img.strings.size(); ++a) {
    for (const auto& row : img.strings[a]) d += hash_string_row(a, row);
  }
  return d;
}

uint64_t summary_digest(const BrokerSummary& s) { return image_digest(extract_image(s)); }

SummaryDelta diff_images(const SummaryImage& base, const SummaryImage& target) {
  if (base.arith.size() != target.arith.size() ||
      base.strings.size() != target.strings.size()) {
    throw std::invalid_argument("diff_images: schema mismatch");
  }
  SummaryDelta d;
  d.arith.resize(target.arith.size());
  d.strings.resize(target.strings.size());

  struct ArithEditBuilder : SummaryDelta::ArithEdit {
    void key_from(const SummaryImage::ArithRow& r) { iv = r.iv; }
  };
  struct StringEditBuilder : SummaryDelta::StringEdit {
    void key_from(const SummaryImage::StringRow& r) { pattern = r.pattern; }
  };

  for (model::AttrId a = 0; a < target.arith.size(); ++a) {
    std::vector<ArithEditBuilder> edits;
    diff_rows(base.arith[a], target.arith[a], edits,
              [](const SummaryImage::ArithRow& x, const SummaryImage::ArithRow& y) {
                return arith_key_less(x.iv, y.iv);
              });
    d.arith[a].assign(std::make_move_iterator(edits.begin()),
                      std::make_move_iterator(edits.end()));
  }
  for (model::AttrId a = 0; a < target.strings.size(); ++a) {
    std::vector<StringEditBuilder> edits;
    diff_rows(base.strings[a], target.strings[a], edits,
              [](const SummaryImage::StringRow& x, const SummaryImage::StringRow& y) {
                return x.pattern < y.pattern;
              });
    d.strings[a].assign(std::make_move_iterator(edits.begin()),
                        std::make_move_iterator(edits.end()));
  }
  return d;
}

void apply_delta(SummaryImage& img, const SummaryDelta& d) {
  if (img.arith.size() < d.arith.size()) img.arith.resize(d.arith.size());
  if (img.strings.size() < d.strings.size()) img.strings.resize(d.strings.size());

  for (model::AttrId a = 0; a < d.arith.size(); ++a) {
    auto& rows = img.arith[a];
    for (const auto& e : d.arith[a]) {
      auto it = std::lower_bound(rows.begin(), rows.end(), e.iv,
                                 [](const SummaryImage::ArithRow& r, const Interval& key) {
                                   return arith_key_less(r.iv, key);
                                 });
      const bool found = it != rows.end() && it->iv == e.iv;
      if (e.drop) {
        if (found) rows.erase(it);
        continue;
      }
      if (!found) it = rows.insert(it, {e.iv, {}});
      if (!e.del.empty()) it->ids = id_difference(it->ids, e.del);
      if (!e.add.empty()) it->ids = id_union(it->ids, e.add);
      if (it->ids.empty()) rows.erase(it);
    }
  }
  for (model::AttrId a = 0; a < d.strings.size(); ++a) {
    auto& rows = img.strings[a];
    for (const auto& e : d.strings[a]) {
      auto it = std::lower_bound(rows.begin(), rows.end(), e.pattern,
                                 [](const SummaryImage::StringRow& r, const StringPattern& key) {
                                   return r.pattern < key;
                                 });
      const bool found = it != rows.end() && it->pattern == e.pattern;
      if (e.drop) {
        if (found) rows.erase(it);
        continue;
      }
      if (!found) it = rows.insert(it, {e.pattern, {}});
      if (!e.del.empty()) it->ids = id_difference(it->ids, e.del);
      if (!e.add.empty()) it->ids = id_union(it->ids, e.add);
      if (it->ids.empty()) rows.erase(it);
    }
  }
}

std::vector<std::byte> encode_delta(const SummaryDelta& d, const model::Schema& schema,
                                    const WireConfig& cfg, const DeltaHeader& header) {
  if (cfg.numeric_width != 4 && cfg.numeric_width != 8) {
    throw std::invalid_argument("numeric_width must be 4 or 8");
  }
  if (d.arith.size() != schema.attr_count() || d.strings.size() != schema.attr_count()) {
    throw std::invalid_argument("encode_delta: schema mismatch");
  }
  util::BufWriter w(256);
  w.put_u8(kDeltaVersion);
  w.put_u64(header.epoch);
  w.put_u64(header.base_version);
  w.put_u64(header.new_version);
  w.put_u64(header.base_digest);
  w.put_u64(header.new_digest);
  w.put_u8(cfg.numeric_width);
  w.put_u8(static_cast<uint8_t>(cfg.codec.c1_bits()));
  w.put_u8(static_cast<uint8_t>(cfg.codec.c2_bits()));
  w.put_u8(static_cast<uint8_t>(cfg.codec.c3_bits()));
  w.put_varint(schema.attr_count());

  for (model::AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      w.put_varint(d.arith[a].size());
      for (const auto& e : d.arith[a]) {
        uint8_t flags = static_cast<uint8_t>((e.iv.lo.o + 1) | ((e.iv.hi.o + 1) << 2));
        const bool lo_inf = std::isinf(e.iv.lo.v);
        const bool hi_inf = std::isinf(e.iv.hi.v);
        const bool point = e.iv.is_point();
        if (lo_inf) flags |= kLoInf;
        if (hi_inf) flags |= kHiInf;
        if (point) flags |= kPoint;
        if (e.drop) flags |= kDrop;
        w.put_u8(flags);
        if (!lo_inf) put_numeric(w, e.iv.lo.v, cfg.numeric_width);
        if (!hi_inf && !point) put_numeric(w, e.iv.hi.v, cfg.numeric_width);
        if (!e.drop) {
          put_ids(w, cfg.codec, e.add);
          put_ids(w, cfg.codec, e.del);
        }
      }
    } else {
      w.put_varint(d.strings[a].size());
      for (const auto& e : d.strings[a]) {
        w.put_u8(e.drop ? 1 : 0);
        w.put_u8(static_cast<uint8_t>(e.pattern.op));
        w.put_string(e.pattern.operand);
        if (!e.drop) {
          put_ids(w, cfg.codec, e.add);
          put_ids(w, cfg.codec, e.del);
        }
      }
    }
  }
  return std::move(w).take();
}

SummaryDelta decode_delta(std::span<const std::byte> data, const model::Schema& schema,
                          DeltaHeader* header_out) {
  util::BufReader r(data);
  if (r.get_u8() != kDeltaVersion) throw util::DecodeError("unknown delta version");
  DeltaHeader header;
  header.epoch = r.get_u64();
  header.base_version = r.get_u64();
  header.new_version = r.get_u64();
  header.base_digest = r.get_u64();
  header.new_digest = r.get_u64();
  if (header_out) *header_out = header;
  const uint8_t width = r.get_u8();
  if (width != 4 && width != 8) throw util::DecodeError("bad numeric width");
  const uint8_t c1 = r.get_u8();
  const uint8_t c2 = r.get_u8();
  const uint8_t c3 = r.get_u8();
  const model::SubIdCodec codec(c1 >= 64 ? ~uint32_t{0} : (uint32_t{1} << c1),
                                c2 >= 64 ? ~uint64_t{0} : (uint64_t{1} << c2), c3);
  if (codec.c1_bits() != c1 || codec.c2_bits() != c2) {
    throw util::DecodeError("inconsistent codec parameters");
  }
  if (r.get_varint() != schema.attr_count()) {
    throw util::DecodeError("delta schema attribute count mismatch");
  }

  SummaryDelta d;
  d.arith.resize(schema.attr_count());
  d.strings.resize(schema.attr_count());
  for (model::AttrId a = 0; a < schema.attr_count(); ++a) {
    const uint64_t n = r.get_varint();
    if (n > r.remaining()) throw util::DecodeError("edit list longer than payload");
    if (is_arithmetic(schema.type_of(a))) {
      d.arith[a].reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        const uint8_t flags = r.get_u8();
        Pos lo{-std::numeric_limits<double>::infinity(), 0};
        Pos hi{std::numeric_limits<double>::infinity(), 0};
        lo.o = static_cast<int8_t>((flags & 0x3) - 1);
        hi.o = static_cast<int8_t>(((flags >> 2) & 0x3) - 1);
        if (!(flags & kLoInf)) lo.v = get_numeric(r, width);
        if (flags & kPoint) {
          hi = lo;
        } else if (!(flags & kHiInf)) {
          hi.v = get_numeric(r, width);
        }
        if (hi < lo) throw util::DecodeError("empty AACS edit key on the wire");
        SummaryDelta::ArithEdit e;
        e.iv = Interval{lo, hi};
        e.drop = (flags & kDrop) != 0;
        if (!e.drop) {
          e.add = get_ids(r, codec);
          e.del = get_ids(r, codec);
        }
        d.arith[a].push_back(std::move(e));
      }
    } else {
      d.strings[a].reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        const uint8_t flags = r.get_u8();
        if (flags > 1) throw util::DecodeError("bad SACS edit flags on the wire");
        const auto op = static_cast<model::Op>(r.get_u8());
        if (!model::op_valid_for(op, model::AttrType::kString)) {
          throw util::DecodeError("bad SACS operator on the wire");
        }
        SummaryDelta::StringEdit e;
        e.pattern = StringPattern{op, r.get_string()};
        e.drop = flags != 0;
        if (!e.drop) {
          e.add = get_ids(r, codec);
          e.del = get_ids(r, codec);
        }
        d.strings[a].push_back(std::move(e));
      }
    }
  }
  if (!r.done()) throw util::DecodeError("trailing bytes after delta");
  return d;
}

}  // namespace subsum::core
