// Wire format for broker summaries, plus the paper's analytic size
// equations (1) and (2) (§5.1). Propagation benches use the actual encoded
// byte count as the bandwidth measure; bench_summary_size compares the two.
//
// Layout (all multi-byte integers little-endian):
//
//   u8  version                               -- 2; v1 (no epoch) still decodes
//   u64 epoch                                 -- announcing broker's incarnation
//   u8  numeric_width (4 or 8)
//   u8  c1_bits, u8 c2_bits, u8 c3_bits      -- SubIdCodec parameters
//   varint attr_count                         -- must equal the schema's
//   for each attribute, in schema order:
//     arithmetic:  varint n_pieces
//                  per piece: u8 flags, [lo], [hi], varint n_ids, ids
//     string:      varint n_rows
//                  per row:   u8 op, varint len, operand bytes,
//                             varint n_ids, ids
//
// Piece flags: bits 0-1 = lo offset + 1, bits 2-3 = hi offset + 1,
// bit 4 = lo is -inf (lo omitted), bit 5 = hi is +inf (hi omitted),
// bit 6 = point row (hi omitted; an AACS_E row).
//
// Subscription ids are packed c1|c2|c3 (SubIdCodec) in
// codec.encoded_size() bytes each — the paper's `sid`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/summary.h"
#include "model/sub_id.h"
#include "util/bytes.h"

namespace subsum::core {

struct WireConfig {
  model::SubIdCodec codec;
  uint8_t numeric_width = 8;  // 8 = exact doubles/int64; 4 = paper's sst
};

/// Encodes a summary. With numeric_width 4, float values are narrowed to
/// float32 and integral values must fit in int32 (throws std::range_error
/// otherwise). `epoch` stamps the image with the announcing broker's
/// incarnation number (see net/broker_node.h; 0 = epochs unused).
std::vector<std::byte> encode_summary(const BrokerSummary& summary, const WireConfig& cfg,
                                      uint64_t epoch = 0);

/// Decodes a summary previously produced by encode_summary over the same
/// schema. Throws util::DecodeError on malformed input. When `epoch_out`
/// is non-null it receives the image's epoch stamp (0 for v1 images).
BrokerSummary decode_summary(std::span<const std::byte> data, const model::Schema& schema,
                             GeneralizePolicy policy = GeneralizePolicy::kSafe,
                             AacsMode arith_mode = AacsMode::kExact,
                             uint64_t* epoch_out = nullptr);

/// Encoded size in bytes (== encode_summary(...).size()).
size_t wire_size(const BrokerSummary& summary, const WireConfig& cfg);

/// The paper's size model, equations (1) and (2).
struct PaperSizeParams {
  size_t sst = 4;  // storage size of an arithmetic value
  size_t sid = 4;  // storage size of a subscription id
  size_t ssv = 10;  // average storage size of a string value
};

struct PaperSize {
  size_t aacs_bytes = 0;  // equation (1): (2·nsr + ne)·sst + La·sid
  size_t sacs_bytes = 0;  // equation (2): nr·ssv + Ls·sid
  [[nodiscard]] size_t total() const noexcept { return aacs_bytes + sacs_bytes; }
};

/// Evaluates equations (1)-(2) on a summary's actual row counts. When
/// `measured_ssv` is true the real string-operand bytes are used instead of
/// the ssv estimate.
PaperSize paper_size(const SummaryStats& stats, const PaperSizeParams& params,
                     bool measured_ssv = false);

}  // namespace subsum::core
