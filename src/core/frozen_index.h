// FrozenIndex: an immutable, sharded, structure-of-arrays snapshot of one
// BrokerSummary, built for the million-subscription matching path.
//
// The live AACS/SACS structures are optimized for mutation: per-piece
// std::vector<SubId> id lists (16 bytes per entry) scattered across the
// heap. At N >= ~10^6 ids, Algorithm 1's two passes over those lists are
// dominated by cache misses and by resetting the dense counter range. The
// frozen index rebuilds the same rows into flat arrays:
//
//  * Slots. The distinct SubIds across all rows are sorted; a
//    subscription's SLOT is its rank, so slot order == SubId order and a
//    sorted slot list translates back to a sorted id list for free.
//    Slots fit 26 bits (kMaxSlots), leaving 6 bits to pack each entry as
//        entry = (slot << 6) | (popcount(c3) - 1)
//    — one u32 carries both the id and its required match count, 4x
//    denser than the SubId it replaces.
//  * Rows. Per arithmetic attribute, the disjoint pieces freeze into
//    contiguous (lo, hi) Pos arrays searched by a branchless binary
//    search on hi (exactly Aacs::find's lower_bound), with each row's id
//    list an (offset, length) slice of one shared entry arena. SACS rows
//    freeze into an equality hash map plus a scanned pattern list,
//    mirroring Sacs::find_into — including its merge-and-dedup semantics
//    when several rows hit.
//  * Shards. The slot space is tiled into shards of 2^shard_shift slots.
//    Step 2 sweeps each collected list once, shard by shard: all entries
//    of the current shard are counted into a counter window of
//    2^shard_shift epoch-tagged cells that stays L1/L2-resident
//    regardless of N, then re-scanned to emit slots whose count equals
//    their requirement (SIMD gather+compare, core/simd.h). Empty shards
//    are skipped via a min over the cursors' next slots. Per-shard visit
//    counters feed subsum_match_shard_visits_total.
//
// On top, MatchScratch carries a row-combination result cache: two events
// satisfying exactly the same set of frozen rows have identical match
// sets (Gryphon's amortize-across-co-located-subscriptions idea), so a
// warm combination is answered by one hash lookup + copy. That is what
// keeps p99 match latency flat from N=100k to N=1M.
//
// Lifecycle: BrokerSummary lazily builds an index once it holds at least
// IndexOptions::min_id_entries id entries, stores it in an
// atomic<shared_ptr>, and hands it to match_into(). Any mutation bumps
// the summary's version; a stale index is dropped from the match path
// immediately (the classic engine takes over, always correct) and
// rebuilt after a dirty-match threshold amortizes the build cost.
// Results are bit-identical to match_reference() in every configuration;
// tests/test_frozen_index.cpp pins that differentially.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/interval.h"
#include "core/matcher.h"
#include "core/string_constraint.h"
#include "core/summary.h"
#include "model/event.h"
#include "model/sub_id.h"

namespace subsum::core {

/// Global knobs for index construction (process-wide; tests and benches
/// override them before building summaries).
struct IndexOptions {
  /// Summaries below this many id entries keep the classic engine — the
  /// index's freeze cost and slot indirection only pay off at scale.
  size_t min_id_entries = 4096;
  /// 0 = auto: shards of 2^kDefaultShardShift slots (a 64 KiB counter
  /// window). Nonzero asks for at most this many shards; the actual
  /// count is the smallest power-of-two tiling that fits.
  uint32_t shard_count = 0;
};

[[nodiscard]] IndexOptions index_options() noexcept;
void set_index_options(const IndexOptions& opts) noexcept;

/// Slots are ranks into a 26-bit space: 6 low bits of every packed entry
/// hold the required count. Summaries with more distinct ids than this
/// fall back to the classic engine (usable() == false).
inline constexpr size_t kMaxSlots = size_t{1} << 26;
inline constexpr uint32_t kDefaultShardShift = 14;  // 16384 slots -> 64 KiB window
inline constexpr uint32_t kMinShardShift = 6;

class FrozenIndex {
 public:
  /// Freezes `summary` at its current version. Never fails: a summary the
  /// layout cannot hold (> kMaxSlots distinct ids) yields an index with
  /// usable() == false, which the summary caches to avoid re-freezing on
  /// every match.
  static std::shared_ptr<const FrozenIndex> build(const BrokerSummary& summary);

  [[nodiscard]] bool usable() const noexcept { return usable_; }
  [[nodiscard]] uint64_t build_id() const noexcept { return build_id_; }
  [[nodiscard]] uint64_t summary_version() const noexcept { return summary_version_; }

  /// Algorithm 1 over the frozen layout. Results (scratch.out, diag) are
  /// bit-identical to match_reference() on the source summary.
  void match_into(const model::Event& event, MatchScratch& scratch, MatchDiag* diag) const;

  // -- introspection / observability ------------------------------------
  /// Estimated resident bytes of the frozen arrays (slot table, entry
  /// arena, row refs, string maps, visit counters). Feeds the
  /// kIndexArenas line of the memory-attribution registry
  /// (obs/memacct.h); an estimate, not an allocator audit.
  [[nodiscard]] size_t memory_bytes() const noexcept;
  [[nodiscard]] size_t slot_count() const noexcept { return slot_ids_.size(); }
  [[nodiscard]] size_t entry_count() const noexcept { return arena_.size(); }
  [[nodiscard]] uint32_t shard_shift() const noexcept { return shard_shift_; }
  [[nodiscard]] uint32_t shard_count() const noexcept { return shard_count_; }
  /// Id entries whose slot falls in `shard` (static layout balance).
  [[nodiscard]] uint64_t shard_entries(uint32_t shard) const {
    return shard_entries_.at(shard);
  }
  /// Drains the shard's visit counter (counter sweeps since last drain),
  /// so an exporter can fold deltas into a monotone registry counter.
  [[nodiscard]] uint64_t drain_shard_visits(uint32_t shard) const noexcept {
    return visits_[shard].exchange(0, std::memory_order_relaxed);
  }
  /// Calls fn(shard, ids_in_shard) for every (frozen row, shard) pair
  /// with a nonzero intersection: the per-shard ids-per-row occupancy
  /// behind subsum_summary_shard_row_ids. O(entries); scrape path only.
  template <typename Fn>
  void for_each_shard_row(Fn&& fn) const {
    for (const auto& [off, len] : rows_) {
      uint32_t shard = UINT32_MAX;
      uint64_t run = 0;
      for (uint32_t i = off; i < off + len; ++i) {
        const uint32_t s = (arena_[i] >> 6) >> shard_shift_;
        if (s != shard) {
          if (run) fn(shard, run);
          shard = s;
          run = 0;
        }
        ++run;
      }
      if (run) fn(shard, run);
    }
  }

 private:
  FrozenIndex() = default;

  struct RowRef {
    uint32_t off = 0;  // into arena_
    uint32_t len = 0;
  };
  struct ArithAttr {
    std::vector<Pos> hi;            // row upper bounds, ascending (pieces disjoint)
    std::vector<Pos> lo;            // matching lower bounds
    std::vector<RowRef> rows;       // id-list slices, same order
    uint32_t row_id_base = 0;       // global id of row 0 (combo-cache signatures)
  };
  struct StringRow {
    RowRef ref;
    uint32_t row_id = 0;
  };
  struct StringAttr {
    std::unordered_map<std::string, StringRow> eq;          // kEq rows by operand
    std::vector<std::pair<StringPattern, StringRow>> pats;  // scanned rows
  };

  /// Collects the event's per-attribute entry lists into scratch.flists
  /// (+ scratch.merged for multi-row SACS hits) and the row signature
  /// into scratch.sig. Returns Σ list lengths (the paper's P).
  size_t collect(const model::Event& event, MatchScratch& s) const;

  /// Step 2 for k >= 2 lists: the sharded, epoch-tagged counter sweep.
  /// Emits matching slots into scratch.out_slots; returns unique ids.
  size_t count_tiled(MatchScratch& s) const;

  bool usable_ = true;
  uint64_t build_id_ = 0;
  uint64_t summary_version_ = 0;
  const model::Schema* schema_ = nullptr;

  std::vector<model::SubId> slot_ids_;  // sorted; slot -> SubId
  std::vector<uint32_t> arena_;         // packed (slot << 6) | (req - 1) entries
  std::vector<ArithAttr> arith_;        // indexed by AttrId (empty for strings)
  std::vector<StringAttr> strings_;     // indexed by AttrId (empty for arithmetic)
  std::vector<RowRef> rows_;            // every frozen row, global row-id order

  uint32_t shard_shift_ = kDefaultShardShift;
  uint32_t shard_count_ = 0;
  std::vector<uint64_t> shard_entries_;
  /// Visit counters are the only mutable state; relaxed increments from
  /// concurrent match calls, drained by the metrics exporter.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> visits_;
};

}  // namespace subsum::core
