#include "core/matcher.h"

#include <algorithm>

#include "core/frozen_index.h"

namespace subsum::core {

using model::SubId;

namespace {

/// Step 1 of Algorithm 1: per event attribute, collect the satisfied id
/// lists into scratch cursors. Each attribute contributes an id at most
/// once (AACS pieces are disjoint; Sacs::find_into deduplicates) and every
/// list is already sorted, so step 2 can count per-id occurrences with a
/// k-way merge (k <= event attributes) instead of a hash-map counter or a
/// global sort. Returns Σ list lengths (the paper's P).
size_t collect_lists(const BrokerSummary& summary, const model::Event& event,
                     MatchScratch& s) {
  const model::Schema& schema = summary.schema();
  s.lists.clear();
  s.lists.reserve(event.attrs().size());
  size_t collected = 0;
  size_t owned_used = 0;
  for (const auto& ea : event.attrs()) {
    if (is_arithmetic(schema.type_of(ea.attr))) {
      const auto* ids = summary.aacs(ea.attr).find(ea.value.as_number());
      if (!ids || ids->empty()) continue;
      s.lists.push_back({ids->data(), ids->data() + ids->size()});
      collected += ids->size();
    } else {
      if (owned_used == s.owned.size()) s.owned.emplace_back();
      auto& buf = s.owned[owned_used];
      summary.sacs(ea.attr).find_into(ea.value.as_string(), buf);
      if (buf.empty()) continue;
      ++owned_used;  // inner buffers never move on outer growth
      collected += buf.size();
      s.lists.push_back({buf.data(), buf.data() + buf.size()});
    }
  }
  return collected;
}

/// Dense-counter step 2: all ids share one broker, so `local - lo` indexes
/// a flat counter array. Two passes over the collected lists — count, then
/// re-scan checking each id's counter against its own popcount(c3) — so
/// the cost is O(P); the tiny match set is sorted at the end. Cells are
/// epoch-tagged `(epoch << 8) | count`: a cell from an earlier call reads
/// as zero, so the per-event reset is one epoch bump instead of a memset
/// of the whole width (at N=1M the memset alone was ~1 MB per event). An
/// id's first pass-2 occurrence sees its final count; resetting the count
/// on emit (popcount >= 1) suppresses re-emission. Counts fit the low
/// byte because an id occurs at most once per list and k <= 64 schema
/// attributes.
size_t match_dense(MatchScratch& s, uint32_t lo, size_t width) {
  if (s.dense_cells.size() < width) s.dense_cells.resize(width);  // zero-filled = stale
  if (++s.dense_epoch >= (uint32_t{1} << 24)) {
    std::fill(s.dense_cells.begin(), s.dense_cells.end(), uint32_t{0});
    s.dense_epoch = 1;
  }
  const uint32_t tag = s.dense_epoch << 8;
  size_t unique = 0;
  for (const auto& [cur, end] : s.lists) {
    for (const SubId* p = cur; p != end; ++p) {
      uint32_t& c = s.dense_cells[p->local - lo];
      if ((c & ~uint32_t{0xFF}) != tag) {
        c = tag | 1;
        ++unique;
      } else {
        ++c;
      }
    }
  }
  for (const auto& [cur, end] : s.lists) {
    for (const SubId* p = cur; p != end; ++p) {
      uint32_t& c = s.dense_cells[p->local - lo];
      if (c == tag + static_cast<uint32_t>(p->attr_count())) {
        s.out.push_back(*p);
        c = tag;
      }
    }
  }
  std::sort(s.out.begin(), s.out.end());
  return unique;
}

/// Linear-scan step 2 for small k, where heap bookkeeping costs more than
/// rescanning the cursors: per round, one pass finds the minimum, one pass
/// counts-and-advances it. Exhausted lists are compacted away so late
/// rounds scan fewer cursors.
size_t match_scan(MatchScratch& s) {
  auto& lists = s.lists;
  size_t unique = 0;
  while (!lists.empty()) {
    const SubId* min = lists[0].cur;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (*lists[i].cur < *min) min = lists[i].cur;
    }
    const SubId id = *min;
    int count = 0;
    for (size_t i = 0; i < lists.size();) {
      auto& [cur, end] = lists[i];
      if (*cur == id) {
        ++count;
        if (++cur == end) {
          lists[i] = lists.back();
          lists.pop_back();
          continue;
        }
      }
      ++i;
    }
    ++unique;
    if (count == id.attr_count()) s.out.push_back(id);
  }
  // Compaction reorders the cursor array, not the per-list ascending order;
  // rounds still consume ids globally smallest-first, so out is sorted.
  return unique;
}

/// Heap step 2: k-way merge, O(P log k). The heap holds list indices
/// ordered by each list's current id; equal ids are drained as one run
/// whose length is the occurrence count.
size_t match_heap(MatchScratch& s) {
  auto& lists = s.lists;
  auto& heap = s.heap;
  heap.clear();
  for (uint32_t i = 0; i < lists.size(); ++i) heap.push_back(i);
  const auto min_on_top = [&](uint32_t a, uint32_t b) {
    return *lists[b].cur < *lists[a].cur;
  };
  std::make_heap(heap.begin(), heap.end(), min_on_top);

  size_t unique = 0;
  while (!heap.empty()) {
    const SubId id = *lists[heap.front()].cur;
    int count = 0;
    do {
      ++count;
      std::pop_heap(heap.begin(), heap.end(), min_on_top);
      auto& c = lists[heap.back()];
      if (++c.cur == c.end) {
        heap.pop_back();
      } else {
        std::push_heap(heap.begin(), heap.end(), min_on_top);
      }
    } while (!heap.empty() && *lists[heap.front()].cur == id);
    ++unique;
    if (count == id.attr_count()) s.out.push_back(id);
  }
  return unique;
}

}  // namespace

std::span<const SubId> match_into(const BrokerSummary& summary, const model::Event& event,
                                  MatchScratch& s, MatchDiag* diag) {
  // Summaries past the index threshold match through the frozen sharded
  // layout (bit-identical results); everything else — small summaries,
  // and any summary whose index is stale pending an amortized rebuild —
  // runs the classic engine below.
  if (const auto idx = summary.frozen_for_match()) {
    idx->match_into(event, s, diag);
    return {s.out.data(), s.out.size()};
  }
  return match_into_unindexed(summary, event, s, diag);
}

std::span<const SubId> match_into_unindexed(const BrokerSummary& summary,
                                            const model::Event& event, MatchScratch& s,
                                            MatchDiag* diag) {
  const size_t collected = collect_lists(summary, event, s);
  s.out.clear();
  if (diag) {
    diag->attrs_satisfied = s.lists.size();
    diag->ids_collected = collected;
    diag->unique_ids = 0;
  }
  if (s.lists.empty()) return {};

  size_t unique;
  if (s.lists.size() == 1) {
    // One list: every id occurs exactly once; matches are the single-attribute
    // subscriptions.
    const auto& [cur, end] = s.lists.front();
    s.out.reserve(static_cast<size_t>(end - cur));
    for (const SubId* p = cur; p != end; ++p) {
      if (p->attr_count() == 1) s.out.push_back(*p);
    }
    unique = collected;
  } else {
    // Dense gate: one broker across all lists (checked via each sorted
    // list's first/last element) and a bounded local-id range.
    const model::BrokerId broker = s.lists.front().cur->broker;
    bool single_broker = true;
    uint32_t lo = UINT32_MAX, hi = 0;
    for (const auto& [cur, end] : s.lists) {
      if (cur->broker != broker || (end - 1)->broker != broker) {
        single_broker = false;
        break;
      }
      lo = std::min(lo, cur->local);
      hi = std::max(hi, (end - 1)->local);
    }
    const size_t width = static_cast<size_t>(hi) - lo + 1;
    s.out.reserve(std::min(collected, width));
    if (single_broker && width <= kDenseMaxWidth &&
        width <= kDenseSlack * collected + kDenseMinWidth) {
      unique = match_dense(s, lo, width);
    } else if (s.lists.size() <= kScanMaxLists) {
      unique = match_scan(s);
    } else {
      unique = match_heap(s);
    }
  }
  if (diag) diag->unique_ids = unique;
  return {s.out.data(), s.out.size()};  // merge order is sorted order
}

std::vector<SubId> match(const BrokerSummary& summary, const model::Event& event,
                         MatchDiag* diag) {
  // Per-thread scratch keeps the historic signature allocation-free in
  // steady state (apart from the returned vector itself, reserved exactly).
  thread_local MatchScratch scratch;
  const auto ids = match_into(summary, event, scratch, diag);
  return {ids.begin(), ids.end()};
}

std::vector<SubId> match_reference(const BrokerSummary& summary, const model::Event& event,
                                   MatchDiag* diag) {
  const model::Schema& schema = summary.schema();
  std::vector<std::vector<SubId>> owned;  // keeps Sacs results alive
  owned.reserve(event.attrs().size());    // lists holds pointers: no realloc
  std::vector<std::pair<const SubId*, const SubId*>> lists;
  lists.reserve(event.attrs().size());
  size_t collected = 0;
  for (const auto& ea : event.attrs()) {
    if (is_arithmetic(schema.type_of(ea.attr))) {
      const auto* ids = summary.aacs(ea.attr).find(ea.value.as_number());
      if (!ids || ids->empty()) continue;
      lists.emplace_back(ids->data(), ids->data() + ids->size());
      collected += ids->size();
    } else {
      auto ids = summary.sacs(ea.attr).find(ea.value.as_string());
      if (ids.empty()) continue;
      collected += ids.size();
      owned.push_back(std::move(ids));
      lists.emplace_back(owned.back().data(), owned.back().data() + owned.back().size());
    }
  }
  if (diag) {
    diag->attrs_satisfied = lists.size();
    diag->ids_collected = collected;
  }

  // A subscription matches iff every attribute its c3 declares was
  // satisfied, i.e. it occurs in popcount(c3) of the collected lists.
  std::vector<SubId> out;
  out.reserve(collected);
  size_t unique = 0;
  while (true) {
    const SubId* min = nullptr;
    for (const auto& [cur, end] : lists) {
      if (cur != end && (!min || *cur < *min)) min = cur;
    }
    if (!min) break;
    const SubId id = *min;
    int count = 0;
    for (auto& [cur, end] : lists) {
      if (cur != end && *cur == id) {
        ++count;
        ++cur;
      }
    }
    ++unique;
    if (count == id.attr_count()) out.push_back(id);
  }
  if (diag) diag->unique_ids = unique;
  return out;  // merge order is sorted order
}

void NaiveMatcher::remove(model::SubId id) {
  std::erase_if(subs_, [&](const model::OwnedSubscription& os) { return os.id == id; });
}

std::vector<SubId> NaiveMatcher::match(const model::Event& event) const {
  std::vector<SubId> out;
  for (const auto& os : subs_) {
    if (os.sub.matches(event)) out.push_back(os.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace subsum::core
