#include "core/matcher.h"

#include <algorithm>

namespace subsum::core {

using model::SubId;

std::vector<SubId> match(const BrokerSummary& summary, const model::Event& event,
                         MatchDiag* diag) {
  const model::Schema& schema = summary.schema();
  // Step 1: per event attribute, collect the satisfied id lists. Each
  // attribute contributes an id at most once (AACS pieces are disjoint;
  // Sacs::find deduplicates) and every list is already sorted, so step 2
  // can count per-id occurrences with a k-way merge (k <= event
  // attributes) instead of a hash-map counter or a global sort.
  std::vector<std::vector<SubId>> owned;  // keeps Sacs results alive
  owned.reserve(event.attrs().size());    // lists holds pointers: no realloc
  std::vector<std::pair<const SubId*, const SubId*>> lists;
  size_t collected = 0;
  for (const auto& ea : event.attrs()) {
    if (is_arithmetic(schema.type_of(ea.attr))) {
      const auto* ids = summary.aacs(ea.attr).find(ea.value.as_number());
      if (!ids || ids->empty()) continue;
      lists.emplace_back(ids->data(), ids->data() + ids->size());
      collected += ids->size();
    } else {
      auto ids = summary.sacs(ea.attr).find(ea.value.as_string());
      if (ids.empty()) continue;
      collected += ids.size();
      owned.push_back(std::move(ids));
      lists.emplace_back(owned.back().data(), owned.back().data() + owned.back().size());
    }
  }
  if (diag) {
    diag->attrs_satisfied = lists.size();
    diag->ids_collected = collected;
  }

  // Step 2: a subscription matches iff every attribute its c3 declares was
  // satisfied, i.e. it occurs in popcount(c3) of the collected lists.
  std::vector<SubId> out;
  size_t unique = 0;
  while (true) {
    const SubId* min = nullptr;
    for (const auto& [cur, end] : lists) {
      if (cur != end && (!min || *cur < *min)) min = cur;
    }
    if (!min) break;
    const SubId id = *min;
    int count = 0;
    for (auto& [cur, end] : lists) {
      if (cur != end && *cur == id) {
        ++count;
        ++cur;
      }
    }
    ++unique;
    if (count == id.attr_count()) out.push_back(id);
  }
  if (diag) diag->unique_ids = unique;
  return out;  // merge order is sorted order
}

void NaiveMatcher::remove(model::SubId id) {
  std::erase_if(subs_, [&](const model::OwnedSubscription& os) { return os.id == id; });
}

std::vector<SubId> NaiveMatcher::match(const model::Event& event) const {
  std::vector<SubId> out;
  for (const auto& os : subs_) {
    if (os.sub.matches(event)) out.push_back(os.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace subsum::core
