// Soft-state summary maintenance: canonical raw-row images, order-independent
// digests, and structural deltas (PROTOCOL.md v4).
//
// A SummaryImage is the raw-row view of a BrokerSummary: per attribute, the
// AACS pieces and SACS rows with their sorted id lists, in a canonical order
// (pieces by interval, string rows by (op, operand)). Two summaries that
// summarize the same state extract to equal images regardless of insertion
// history, so images are what delta propagation diffs, applies, and digests:
//
//   * the SENDER keeps, per neighbor, the image it last announced and ships
//     diff(last_sent, current) — added/dropped rows plus id-list splices;
//   * the RECEIVER keeps, per neighbor, a shadow image of that neighbor's
//     announcement and applies the delta to it row-for-row (never through
//     Aacs/Sacs insertion, which would split or generalize);
//   * both sides agree the apply worked iff image_digest(shadow) equals the
//     digest the sender stamped on the wire — on mismatch the receiver
//     falls back to a full image (kSummarySync), so divergence is detected
//     and healed within one propagation period.
//
// The digest is a commutative fold (sum mod 2^64 of per-row FNV-1a hashes),
// so it is independent of row order and of how the summary was built.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/serialize.h"
#include "core/summary.h"

namespace subsum::core {

/// Canonical raw-row view of one BrokerSummary.
struct SummaryImage {
  struct ArithRow {
    Interval iv;
    std::vector<model::SubId> ids;  // sorted, unique
    bool operator==(const ArithRow&) const = default;
  };
  struct StringRow {
    StringPattern pattern;
    std::vector<model::SubId> ids;  // sorted, unique
    bool operator==(const StringRow&) const = default;
  };

  std::vector<std::vector<ArithRow>> arith;     // [attr], sorted by (lo, hi)
  std::vector<std::vector<StringRow>> strings;  // [attr], sorted by (op, operand)

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] size_t row_count() const noexcept;
  [[nodiscard]] size_t id_entries() const noexcept;

  bool operator==(const SummaryImage&) const = default;
};

/// Extracts the canonical image of `s`. O(rows + id entries).
SummaryImage extract_image(const BrokerSummary& s);

/// Rebuilds a matchable summary from an image. Because image rows came out
/// of AACS/SACS structures that already satisfy the no-row-covers-another
/// invariant, insertion reproduces them exactly (same guarantee the wire
/// decoder relies on).
BrokerSummary build_summary(const SummaryImage& img, const model::Schema& schema,
                            GeneralizePolicy policy = GeneralizePolicy::kSafe,
                            AacsMode arith_mode = AacsMode::kExact);

/// Folds an image's rows into an existing summary (held-state rebuild path).
void merge_into_summary(const SummaryImage& img, BrokerSummary& out);

/// Order-independent content digest: sum mod 2^64 of per-row FNV-1a hashes
/// over (attr, row key, id list). Equal images ⇒ equal digests; unequal
/// digests ⇒ unequal images.
uint64_t image_digest(const SummaryImage& img) noexcept;

/// Convenience: image_digest(extract_image(s)).
uint64_t summary_digest(const BrokerSummary& s);

/// Structural delta turning one image into another. Each edit targets one
/// row by key: `drop` deletes the row outright; otherwise `add`/`del` splice
/// the id list (creating the row when absent, erasing it when emptied).
struct SummaryDelta {
  struct ArithEdit {
    Interval iv;
    bool drop = false;
    std::vector<model::SubId> add;  // sorted, unique
    std::vector<model::SubId> del;  // sorted, unique
    bool operator==(const ArithEdit&) const = default;
  };
  struct StringEdit {
    StringPattern pattern;
    bool drop = false;
    std::vector<model::SubId> add;
    std::vector<model::SubId> del;
    bool operator==(const StringEdit&) const = default;
  };

  std::vector<std::vector<ArithEdit>> arith;     // [attr]
  std::vector<std::vector<StringEdit>> strings;  // [attr]

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] size_t edit_count() const noexcept;

  bool operator==(const SummaryDelta&) const = default;
};

/// Computes the delta with apply_delta(base, diff) == target.
SummaryDelta diff_images(const SummaryImage& base, const SummaryImage& target);

/// Applies a delta in place. Total by design: dropping an absent row or
/// deleting absent ids is a no-op — correctness is judged by the digest the
/// sender stamped on the wire, not by apply-time bookkeeping, so a stale
/// base surfaces as a digest mismatch (→ kSummarySync repair), never UB.
void apply_delta(SummaryImage& img, const SummaryDelta& d);

/// Wire header carried by every encoded delta (PROTOCOL.md v4).
struct DeltaHeader {
  uint64_t epoch = 0;         // sender incarnation (PR-3 epochs)
  uint64_t base_version = 0;  // sender's summary version at the base image
  uint64_t new_version = 0;   // ... and at the target image
  uint64_t base_digest = 0;   // image_digest of the base the diff assumes
  uint64_t new_digest = 0;    // image_digest the receiver must land on
};

/// Encodes a delta (self-contained: carries numeric width + id codec like
/// encode_summary). Schema must match the images the delta was diffed from.
std::vector<std::byte> encode_delta(const SummaryDelta& d, const model::Schema& schema,
                                    const WireConfig& cfg, const DeltaHeader& header);

/// Decodes a delta. Throws util::DecodeError on malformed input.
SummaryDelta decode_delta(std::span<const std::byte> data, const model::Schema& schema,
                          DeltaHeader* header_out = nullptr);

}  // namespace subsum::core
