// Interval algebra underlying the Arithmetic Attribute Constraint Summary
// (AACS, paper §3.1). The paper stores "non-overlapping sub-ranges of values
// specified in subscriptions". To keep that partition *exact* for every
// operator (including strict < > and ≠), we work over positions
//
//     Pos = (value, offset)   with offset in {-1, 0, +1}
//
// denoting "just below value", "at value" and "just above value". Every
// interval is a closed pair of positions [lo, hi]; an open endpoint is simply
// the neighbouring position. This turns splitting, adjacency and merging
// into integer-like arithmetic:
//
//   (8.30, 8.70]  ==  [ (8.30,+1), (8.70,0) ]
//   x != 5        ==  [-inf,(5,-1)] ∪ [(5,+1),+inf]
//
// Two intervals are mergeable iff the successor of one's hi equals the
// other's lo.
#pragma once

#include <compare>
#include <limits>
#include <string>
#include <vector>

#include "model/constraint.h"

namespace subsum::core {

/// A point on the extended real line with an infinitesimal offset.
struct Pos {
  double v = 0;
  int8_t o = 0;  // -1: just below v, 0: at v, +1: just above v

  friend std::strong_ordering operator<=>(const Pos& a, const Pos& b) noexcept {
    if (a.v < b.v) return std::strong_ordering::less;
    if (a.v > b.v) return std::strong_ordering::greater;
    return a.o <=> b.o;
  }
  friend bool operator==(const Pos& a, const Pos& b) noexcept {
    return a.v == b.v && a.o == b.o;
  }

  /// Position immediately above/below. Precondition: o != +1 / o != -1.
  [[nodiscard]] Pos succ() const noexcept { return {v, static_cast<int8_t>(o + 1)}; }
  [[nodiscard]] Pos pred() const noexcept { return {v, static_cast<int8_t>(o - 1)}; }

  static Pos at(double x) noexcept { return {x, 0}; }
  static Pos neg_inf() noexcept { return {-std::numeric_limits<double>::infinity(), 0}; }
  static Pos pos_inf() noexcept { return {std::numeric_limits<double>::infinity(), 0}; }
};

/// A non-empty closed position interval [lo, hi] (lo <= hi). Start offsets
/// are in {0,+1}, end offsets in {-1,0}, so pred/succ at split points always
/// exist. The empty set is represented by the absence of an interval (see
/// IntervalSet), never by an Interval object.
struct Interval {
  Pos lo = Pos::at(0);
  Pos hi = Pos::at(0);

  [[nodiscard]] bool contains(double x) const noexcept {
    const Pos p = Pos::at(x);
    return lo <= p && p <= hi;
  }

  /// A single value with both endpoints closed (an AACS_E row).
  [[nodiscard]] bool is_point() const noexcept { return lo == hi && lo.o == 0; }

  [[nodiscard]] bool overlaps(const Interval& o) const noexcept {
    return lo <= o.hi && o.lo <= hi;
  }

  /// True if `this ∪ o` is a contiguous interval.
  [[nodiscard]] bool touches(const Interval& o) const noexcept;

  static Interval all() noexcept { return {Pos::neg_inf(), Pos::pos_inf()}; }
  static Interval point(double x) noexcept { return {Pos::at(x), Pos::at(x)}; }
  static Interval less_than(double x) noexcept { return {Pos::neg_inf(), Pos::at(x).pred()}; }
  static Interval at_most(double x) noexcept { return {Pos::neg_inf(), Pos::at(x)}; }
  static Interval greater_than(double x) noexcept { return {Pos::at(x).succ(), Pos::pos_inf()}; }
  static Interval at_least(double x) noexcept { return {Pos::at(x), Pos::pos_inf()}; }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Interval&) const = default;
};

/// An ordered set of pairwise disjoint, non-touching, non-empty intervals —
/// the canonical representation of any finite union of intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// The satisfying set of one arithmetic constraint. `≠ v` produces two
  /// intervals; everything else produces one.
  static IntervalSet from_constraint(model::Op op, double operand);

  static IntervalSet all() { return of({Interval::all()}); }

  /// Builds from arbitrary intervals, normalizing (sort + merge).
  static IntervalSet of(std::vector<Interval> ivs);

  /// Set intersection (used to combine conjunctive constraints on the same
  /// attribute before insertion into the AACS).
  [[nodiscard]] IntervalSet intersect(const IntervalSet& o) const;

  [[nodiscard]] bool contains(double x) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return ivs_.empty(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept { return ivs_; }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const IntervalSet&) const = default;

 private:
  std::vector<Interval> ivs_;
};

}  // namespace subsum::core
