#include "core/string_constraint.h"

#include <stdexcept>

#include "util/strings.h"

namespace subsum::core {

using model::Op;

bool StringPattern::matches(const std::string& value) const {
  switch (op) {
    case Op::kEq:
      return value == operand;
    case Op::kNe:
      return value != operand;
    case Op::kPrefix:
      return util::starts_with(value, operand);
    case Op::kSuffix:
      return util::ends_with(value, operand);
    case Op::kContains:
      return util::contains(value, operand);
    default:
      throw std::invalid_argument("not a string operator");
  }
}

std::string StringPattern::to_string() const {
  return std::string(model::to_string(op)) + " \"" + operand + "\"";
}

bool covers(const StringPattern& a, const StringPattern& b) {
  switch (a.op) {
    case Op::kEq:
      // Only the identical equality constraint.
      return b.op == Op::kEq && b.operand == a.operand;
    case Op::kNe:
      // a = (s != x) covers b iff x is not in sat(b).
      switch (b.op) {
        case Op::kEq:
          return b.operand != a.operand;
        case Op::kNe:
          return b.operand == a.operand;
        case Op::kPrefix:
          return !util::starts_with(a.operand, b.operand);
        case Op::kSuffix:
          return !util::ends_with(a.operand, b.operand);
        case Op::kContains:
          return !util::contains(a.operand, b.operand);
        default:
          return false;
      }
    case Op::kPrefix:
      switch (b.op) {
        case Op::kEq:
          return util::starts_with(b.operand, a.operand);
        case Op::kPrefix:
          return util::starts_with(b.operand, a.operand);
        default:
          return false;
      }
    case Op::kSuffix:
      switch (b.op) {
        case Op::kEq:
          return util::ends_with(b.operand, a.operand);
        case Op::kSuffix:
          return util::ends_with(b.operand, a.operand);
        default:
          return false;
      }
    case Op::kContains:
      // Anything satisfying b contains b.operand as substring (except ≠,
      // which we cannot bound); a covers b if b.operand contains a.operand.
      switch (b.op) {
        case Op::kEq:
        case Op::kPrefix:
        case Op::kSuffix:
        case Op::kContains:
          return util::contains(b.operand, a.operand);
        case Op::kNe:
          // contains("") is satisfied by every string, so it covers ≠ too.
          return a.operand.empty();
        default:
          return false;
      }
    default:
      return false;
  }
}

bool covers(const StringPattern& a, const StringPattern& b, GeneralizePolicy policy) {
  switch (policy) {
    case GeneralizePolicy::kNone:
      return a == b;
    case GeneralizePolicy::kSafe:
      if (a.op == Op::kNe && b.op != Op::kNe) return false;
      return covers(a, b);
    case GeneralizePolicy::kAggressive:
      return covers(a, b);
  }
  return false;
}

}  // namespace subsum::core
