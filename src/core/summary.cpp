#include "core/summary.h"

#include <stdexcept>

namespace subsum::core {

using model::AttrId;
using model::AttrType;

BrokerSummary::BrokerSummary(const model::Schema& schema, GeneralizePolicy policy,
                             AacsMode arith_mode)
    : schema_(&schema), policy_(policy), arith_mode_(arith_mode) {
  aacs_.assign(schema.attr_count(), Aacs(arith_mode));
  sacs_.assign(schema.attr_count(), Sacs(policy));
}

void BrokerSummary::add(const model::Subscription& sub, model::SubId id) {
  if (sub.mask() != id.attrs) {
    throw std::invalid_argument("subscription id c3 mask does not match the subscription");
  }
  // Group the constraints by attribute; arithmetic ones are intersected.
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (!(sub.mask() & model::attr_bit(a))) continue;
    if (is_arithmetic(schema_->type_of(a))) {
      IntervalSet region = IntervalSet::all();
      for (const auto& c : sub.constraints()) {
        if (c.attr != a) continue;
        region = region.intersect(IntervalSet::from_constraint(c.op, c.operand.as_number()));
      }
      aacs_[a].insert(region, id);
    } else {
      for (const auto& c : sub.constraints()) {
        if (c.attr != a) continue;
        sacs_[a].insert(StringPattern{c.op, c.operand.as_string()}, id);
      }
    }
  }
}

void BrokerSummary::remove(model::SubId id) {
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (!(id.attrs & model::attr_bit(a))) continue;
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].remove(id);
    } else {
      sacs_[a].remove(id);
    }
  }
}

void BrokerSummary::remove_broker(model::BrokerId broker) {
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].remove_broker(broker);
    } else {
      sacs_[a].remove_broker(broker);
    }
  }
}

void BrokerSummary::merge(const BrokerSummary& other) {
  if (!schema_ || !other.schema_ || !(*schema_ == *other.schema_)) {
    throw std::invalid_argument("cannot merge summaries over different schemata");
  }
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].merge(other.aacs_[a]);
    } else {
      sacs_[a].merge(other.sacs_[a]);
    }
  }
}

void BrokerSummary::insert_arith(model::AttrId id, const Interval& iv,
                                 std::span<const model::SubId> ids) {
  if (!is_arithmetic(schema_->type_of(id))) throw model::TypeError("attribute is not arithmetic");
  aacs_.at(id).insert(iv, ids);
}

void BrokerSummary::insert_string(model::AttrId id, const StringPattern& p,
                                  std::span<const model::SubId> ids) {
  if (schema_->type_of(id) != AttrType::kString) throw model::TypeError("attribute is not a string");
  sacs_.at(id).insert(p, ids);
}

void BrokerSummary::clear() {
  for (auto& a : aacs_) a = Aacs(arith_mode_);
  for (auto& s : sacs_) s = Sacs(policy_);
}

BrokerSummary BrokerSummary::rebuild(const model::Schema& schema, GeneralizePolicy policy,
                                     const std::vector<model::OwnedSubscription>& subs,
                                     AacsMode arith_mode) {
  BrokerSummary out(schema, policy, arith_mode);
  for (const auto& os : subs) out.add(os.sub, os.id);
  return out;
}

BrokerSummary BrokerSummary::with_schema(const model::Schema& wider) const {
  if (!schema_ || !model::is_extension_of(wider, *schema_)) {
    throw std::invalid_argument("schema is not an extension of this summary's schema");
  }
  BrokerSummary out(wider, policy_, arith_mode_);
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    out.aacs_[a] = aacs_[a];
    out.sacs_[a] = sacs_[a];
  }
  return out;
}

const Aacs& BrokerSummary::aacs(AttrId id) const {
  if (!is_arithmetic(schema_->type_of(id))) {
    throw model::TypeError("attribute is not arithmetic");
  }
  return aacs_.at(id);
}

const Sacs& BrokerSummary::sacs(AttrId id) const {
  if (schema_->type_of(id) != AttrType::kString) {
    throw model::TypeError("attribute is not a string");
  }
  return sacs_.at(id);
}

bool BrokerSummary::empty() const noexcept {
  for (const auto& a : aacs_) {
    if (!a.empty()) return false;
  }
  for (const auto& s : sacs_) {
    if (!s.empty()) return false;
  }
  return true;
}

SummaryStats BrokerSummary::stats() const noexcept {
  SummaryStats st;
  for (const auto& a : aacs_) {
    st.nsr += a.nsr();
    st.ne += a.ne();
    st.la_entries += a.id_entries();
  }
  for (const auto& s : sacs_) {
    st.nr += s.nr();
    st.ls_entries += s.id_entries();
    st.value_bytes += s.value_bytes();
  }
  return st;
}

std::string BrokerSummary::to_string() const {
  std::string out;
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    const auto& spec = schema_->spec(a);
    if (is_arithmetic(spec.type)) {
      if (aacs_[a].empty()) continue;
      out += "AACS[" + spec.name + "]\n" + aacs_[a].to_string();
    } else {
      if (sacs_[a].empty()) continue;
      out += "SACS[" + spec.name + "]\n" + sacs_[a].to_string();
    }
  }
  return out;
}

}  // namespace subsum::core
