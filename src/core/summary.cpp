#include "core/summary.h"

#include <algorithm>
#include <stdexcept>

#include "core/frozen_index.h"

namespace subsum::core {

using model::AttrId;
using model::AttrType;

namespace {

std::atomic<uint64_t> g_summary_version{0};

uint64_t next_version() noexcept {
  // Versions are globally unique (never 0), so an index can never be
  // mistaken for fresh after any mutation — including across summary
  // copies that share an index handle.
  return g_summary_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

BrokerSummary::BrokerSummary(const model::Schema& schema, GeneralizePolicy policy,
                             AacsMode arith_mode)
    : schema_(&schema), policy_(policy), arith_mode_(arith_mode), version_(next_version()) {
  aacs_.assign(schema.attr_count(), Aacs(arith_mode));
  sacs_.assign(schema.attr_count(), Sacs(policy));
}

BrokerSummary::BrokerSummary(const BrokerSummary& o)
    : schema_(o.schema_),
      policy_(o.policy_),
      arith_mode_(o.arith_mode_),
      aacs_(o.aacs_),
      sacs_(o.sacs_),
      version_(o.version_),
      approx_id_entries_(o.approx_id_entries_) {
  index_.store(o.index_.load(std::memory_order_acquire), std::memory_order_release);
}

BrokerSummary& BrokerSummary::operator=(const BrokerSummary& o) {
  if (this == &o) return *this;
  schema_ = o.schema_;
  policy_ = o.policy_;
  arith_mode_ = o.arith_mode_;
  aacs_ = o.aacs_;
  sacs_ = o.sacs_;
  version_ = o.version_;
  approx_id_entries_ = o.approx_id_entries_;
  dirty_matches_.store(0, std::memory_order_relaxed);
  index_.store(o.index_.load(std::memory_order_acquire), std::memory_order_release);
  return *this;
}

BrokerSummary::BrokerSummary(BrokerSummary&& o) noexcept
    : schema_(o.schema_),
      policy_(o.policy_),
      arith_mode_(o.arith_mode_),
      aacs_(std::move(o.aacs_)),
      sacs_(std::move(o.sacs_)),
      version_(o.version_),
      approx_id_entries_(o.approx_id_entries_) {
  index_.store(o.index_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
  o.version_ = 0;
  o.approx_id_entries_ = 0;
}

BrokerSummary& BrokerSummary::operator=(BrokerSummary&& o) noexcept {
  if (this == &o) return *this;
  schema_ = o.schema_;
  policy_ = o.policy_;
  arith_mode_ = o.arith_mode_;
  aacs_ = std::move(o.aacs_);
  sacs_ = std::move(o.sacs_);
  version_ = o.version_;
  approx_id_entries_ = o.approx_id_entries_;
  dirty_matches_.store(0, std::memory_order_relaxed);
  index_.store(o.index_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
  o.version_ = 0;
  o.approx_id_entries_ = 0;
  return *this;
}

BrokerSummary::~BrokerSummary() = default;

void BrokerSummary::bump_version() noexcept {
  version_ = next_version();
  dirty_matches_.store(0, std::memory_order_relaxed);
}

std::shared_ptr<const FrozenIndex> BrokerSummary::frozen_for_match() const {
  std::shared_ptr<const FrozenIndex> idx = index_.load(std::memory_order_acquire);
  if (idx && idx->summary_version() == version_) {
    return idx->usable() ? idx : nullptr;
  }
  if (!schema_ || approx_id_entries_ < index_options().min_id_entries) return nullptr;
  if (idx) {
    // Stale index: the classic engine serves matches (always correct on
    // the live structures) until enough of them amortize a re-freeze.
    const uint64_t threshold = std::max<uint64_t>(64, approx_id_entries_ / 1024);
    if (dirty_matches_.fetch_add(1, std::memory_order_relaxed) + 1 < threshold) {
      return nullptr;
    }
    dirty_matches_.store(0, std::memory_order_relaxed);
  }
  auto fresh = FrozenIndex::build(*this);
  index_.store(fresh, std::memory_order_release);
  return fresh->usable() ? fresh : nullptr;
}

std::shared_ptr<const FrozenIndex> BrokerSummary::frozen_if_built() const {
  std::shared_ptr<const FrozenIndex> idx = index_.load(std::memory_order_acquire);
  if (idx && idx->summary_version() == version_ && idx->usable()) return idx;
  return nullptr;
}

void BrokerSummary::add(const model::Subscription& sub, model::SubId id) {
  if (sub.mask() != id.attrs) {
    throw std::invalid_argument("subscription id c3 mask does not match the subscription");
  }
  // Group the constraints by attribute; arithmetic ones are intersected.
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (!(sub.mask() & model::attr_bit(a))) continue;
    if (is_arithmetic(schema_->type_of(a))) {
      IntervalSet region = IntervalSet::all();
      for (const auto& c : sub.constraints()) {
        if (c.attr != a) continue;
        region = region.intersect(IntervalSet::from_constraint(c.op, c.operand.as_number()));
      }
      aacs_[a].insert(region, id);
    } else {
      for (const auto& c : sub.constraints()) {
        if (c.attr != a) continue;
        sacs_[a].insert(StringPattern{c.op, c.operand.as_string()}, id);
      }
    }
  }
  approx_id_entries_ += static_cast<size_t>(id.attr_count());
  bump_version();
}

void BrokerSummary::remove(model::SubId id) {
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (!(id.attrs & model::attr_bit(a))) continue;
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].remove(id);
    } else {
      sacs_[a].remove(id);
    }
  }
  const size_t d = static_cast<size_t>(id.attr_count());
  approx_id_entries_ -= std::min(approx_id_entries_, d);
  bump_version();
}

void BrokerSummary::remove_broker(model::BrokerId broker) {
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].remove_broker(broker);
    } else {
      sacs_[a].remove_broker(broker);
    }
  }
  // Admin path: cheap to make the heuristic exact again.
  const SummaryStats st = stats();
  approx_id_entries_ = st.la_entries + st.ls_entries;
  bump_version();
}

void BrokerSummary::merge(const BrokerSummary& other) {
  if (!schema_ || !other.schema_ || !(*schema_ == *other.schema_)) {
    throw std::invalid_argument("cannot merge summaries over different schemata");
  }
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    if (is_arithmetic(schema_->type_of(a))) {
      aacs_[a].merge(other.aacs_[a]);
    } else {
      sacs_[a].merge(other.sacs_[a]);
    }
  }
  approx_id_entries_ += other.approx_id_entries_;
  bump_version();
}

void BrokerSummary::insert_arith(model::AttrId id, const Interval& iv,
                                 std::span<const model::SubId> ids) {
  if (!is_arithmetic(schema_->type_of(id))) throw model::TypeError("attribute is not arithmetic");
  aacs_.at(id).insert(iv, ids);
  approx_id_entries_ += ids.size();
  bump_version();
}

void BrokerSummary::insert_string(model::AttrId id, const StringPattern& p,
                                  std::span<const model::SubId> ids) {
  if (schema_->type_of(id) != AttrType::kString) throw model::TypeError("attribute is not a string");
  sacs_.at(id).insert(p, ids);
  approx_id_entries_ += ids.size();
  bump_version();
}

void BrokerSummary::clear() {
  for (auto& a : aacs_) a = Aacs(arith_mode_);
  for (auto& s : sacs_) s = Sacs(policy_);
  approx_id_entries_ = 0;
  bump_version();
}

BrokerSummary BrokerSummary::rebuild(const model::Schema& schema, GeneralizePolicy policy,
                                     const std::vector<model::OwnedSubscription>& subs,
                                     AacsMode arith_mode) {
  BrokerSummary out(schema, policy, arith_mode);
  for (const auto& os : subs) out.add(os.sub, os.id);
  return out;
}

BrokerSummary BrokerSummary::with_schema(const model::Schema& wider) const {
  if (!schema_ || !model::is_extension_of(wider, *schema_)) {
    throw std::invalid_argument("schema is not an extension of this summary's schema");
  }
  BrokerSummary out(wider, policy_, arith_mode_);
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    out.aacs_[a] = aacs_[a];
    out.sacs_[a] = sacs_[a];
  }
  out.approx_id_entries_ = approx_id_entries_;
  out.bump_version();
  return out;
}

const Aacs& BrokerSummary::aacs(AttrId id) const {
  if (!is_arithmetic(schema_->type_of(id))) {
    throw model::TypeError("attribute is not arithmetic");
  }
  return aacs_.at(id);
}

const Sacs& BrokerSummary::sacs(AttrId id) const {
  if (schema_->type_of(id) != AttrType::kString) {
    throw model::TypeError("attribute is not a string");
  }
  return sacs_.at(id);
}

bool BrokerSummary::empty() const noexcept {
  for (const auto& a : aacs_) {
    if (!a.empty()) return false;
  }
  for (const auto& s : sacs_) {
    if (!s.empty()) return false;
  }
  return true;
}

SummaryStats BrokerSummary::stats() const noexcept {
  SummaryStats st;
  for (const auto& a : aacs_) {
    st.nsr += a.nsr();
    st.ne += a.ne();
    st.la_entries += a.id_entries();
  }
  for (const auto& s : sacs_) {
    st.nr += s.nr();
    st.ls_entries += s.id_entries();
    st.value_bytes += s.value_bytes();
  }
  return st;
}

std::string BrokerSummary::to_string() const {
  std::string out;
  for (AttrId a = 0; a < schema_->attr_count(); ++a) {
    const auto& spec = schema_->spec(a);
    if (is_arithmetic(spec.type)) {
      if (aacs_[a].empty()) continue;
      out += "AACS[" + spec.name + "]\n" + aacs_[a].to_string();
    } else {
      if (sacs_[a].empty()) continue;
      out += "SACS[" + spec.name + "]\n" + sacs_[a].to_string();
    }
  }
  return out;
}

}  // namespace subsum::core
