// Distributed event processing (paper §4.3, Algorithm 3).
//
// Each event carries BROCLI_e, the set of brokers whose subscriptions have
// already been examined. A visited broker matches the event against its
// merged summary, notifies the owners (c1 of each matched id) of fresh
// matches, adds its whole Merged_Brokers set to BROCLI, and — while BROCLI
// does not contain all brokers — forwards the event to the broker with the
// highest degree not yet in BROCLI. Any broker may address any other
// directly; each such message counts as one hop (§5.2, "regardless of
// whether the two brokers are neighbors in the overlay topology").
//
// Duplicate-delivery suppression (see DESIGN.md): a broker notifies an
// owner only if that owner is NOT in the incoming BROCLI — otherwise some
// earlier broker already examined (a superset of) the owner's subscriptions
// and notified it.
//
// Load-balancing extension (paper §6 "virtual degrees"): the forwarding
// rule can use capped virtual degrees so the walk does not always hammer
// the same maximum-degree brokers; ties are rotated deterministically per
// event.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/matcher.h"
#include "model/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/propagation.h"

namespace subsum::routing {

/// One event->owner notification.
struct Delivery {
  overlay::BrokerId examined_at = 0;  // broker whose merged summary matched
  overlay::BrokerId owner = 0;        // c1 of the matched ids
  std::vector<model::SubId> ids;      // matched subscriptions of that owner
};

struct RouteResult {
  std::vector<overlay::BrokerId> visited;  // walk order, starting at origin
  std::vector<Delivery> deliveries;
  /// Down brokers the walk bypassed (marked in BROCLI unexamined), in the
  /// order encountered — mirrors BrokerNode's degraded TCP walk.
  std::vector<overlay::BrokerId> skipped;
  /// Matches owned by down brokers: undeliverable while the partition
  /// lasts (over TCP these sit in the sender's redelivery queue).
  std::vector<Delivery> undeliverable;
  /// Span log of the walk when RouterOptions::trace_id is set (empty
  /// otherwise). Timestamps are virtual: a step counter incremented per
  /// span, so identical walks give identical spans — byte-for-byte via
  /// obs::to_jsonl — which the determinism tests rely on.
  std::vector<obs::Span> spans;
  /// Forwarding messages between examining brokers (= visited.size()-1).
  size_t forward_hops = 0;
  /// Notification messages to owners; a broker that examines the event and
  /// owns a match delivers locally at zero hops.
  size_t delivery_hops = 0;

  [[nodiscard]] size_t total_hops() const noexcept { return forward_hops + delivery_hops; }

  /// All matched subscription ids across deliveries, sorted.
  [[nodiscard]] std::vector<model::SubId> matched_ids() const;
};

/// BROCLI walk-efficiency counters (the observatory's routing probe):
/// how many brokers a walk visits, how many forward vs delivery messages
/// it sends, and how often it had to re-select around a down broker
/// (marked unexamined in BROCLI). Pre-registers stable handles so fold()
/// is a handful of relaxed atomic adds — callable per publish.
struct WalkMetrics {
  explicit WalkMetrics(obs::MetricsRegistry& reg)
      : walks(reg.counter("subsum_walk_total")),
        visits(reg.counter("subsum_walk_visits_total")),
        forward_hops(reg.counter("subsum_walk_forward_hops_total")),
        delivery_hops(reg.counter("subsum_walk_delivery_hops_total")),
        reselects(reg.counter("subsum_walk_reselects_total")),
        undeliverable(reg.counter("subsum_walk_undeliverable_total")) {}

  /// Folds one finished walk into the counters. (const: mutation happens
  /// through the stable registry handles, so const publish paths may fold.)
  void fold(const RouteResult& r) const noexcept {
    walks->inc();
    visits->inc(r.visited.size());
    forward_hops->inc(r.forward_hops);
    delivery_hops->inc(r.delivery_hops);
    reselects->inc(r.skipped.size());
    undeliverable->inc(r.undeliverable.size());
  }

  obs::Counter* walks;
  obs::Counter* visits;
  obs::Counter* forward_hops;
  obs::Counter* delivery_hops;
  obs::Counter* reselects;      // down brokers bypassed, re-selected around
  obs::Counter* undeliverable;  // matches owned by down brokers
};

/// Which broker the walk forwards to next (§4.3 notes "a number of
/// alternatives ... trade-off event processing time with load
/// distribution").
enum class ForwardStrategy : uint8_t {
  /// The paper's presented rule: highest (possibly virtual) degree first.
  kHighestDegree = 0,
  /// Coverage-aware: the broker whose Merged_Brokers set would add the
  /// most unexamined brokers to BROCLI. Needs each broker's merged-set
  /// membership gossiped alongside the summaries (a few bytes per broker —
  /// the propagation phase already carries the sets); shortens walks on
  /// topologies whose degrees poorly predict knowledge concentration.
  kLargestCoverage = 1,
};

struct RouterOptions {
  ForwardStrategy strategy = ForwardStrategy::kHighestDegree;
  /// Optional per-broker virtual degrees replacing real degrees in the
  /// "highest degree not in BROCLI" choice. Size must equal broker count.
  std::optional<std::vector<int>> virtual_degrees;
  /// Rotates tie-breaking among equal-score candidates (e.g. a per-event
  /// sequence number) to spread load; 0 keeps the smallest-id rule.
  uint64_t tie_salt = 0;
  /// Brokers currently believed down (empty, or one flag per broker). The
  /// walk never forwards to a down broker: when one would be chosen it is
  /// marked in BROCLI unexamined (RouteResult::skipped) and the walk
  /// degrades to the next-best live broker; matches owned by down brokers
  /// land in RouteResult::undeliverable. The origin must be up.
  std::vector<char> down;
  /// Nonzero: record the walk as spans (RouteResult::spans) under this
  /// trace id. SimSystem mints ids deterministically (obs::mint_trace_id
  /// with salt 0) when SystemConfig::trace is on.
  uint64_t trace_id = 0;
};

/// Routes one event published at `origin` through the post-propagation
/// state. Complexity: at most n broker visits; each visit runs Algorithm 1
/// on the broker's merged summary. With `scratch`, the per-visit matching
/// runs through the caller's MatchScratch (one per thread — see
/// SimSystem::publish_batch); without, a per-thread default is used.
RouteResult route_event(const overlay::Graph& g, const PropagationResult& state,
                        overlay::BrokerId origin, const model::Event& event,
                        const RouterOptions& opts = {},
                        core::MatchScratch* scratch = nullptr);

/// Virtual degrees: real degrees capped at `cap` (paper §6 suggests
/// reducing the maximum-degree nodes' load).
std::vector<int> capped_virtual_degrees(const overlay::Graph& g, int cap);

}  // namespace subsum::routing
