#include "routing/event_router.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace subsum::routing {

using overlay::BrokerId;

std::vector<model::SubId> RouteResult::matched_ids() const {
  std::vector<model::SubId> out;
  for (const auto& d : deliveries) out.insert(out.end(), d.ids.begin(), d.ids.end());
  std::sort(out.begin(), out.end());
  return out;
}

RouteResult route_event(const overlay::Graph& g, const PropagationResult& state,
                        BrokerId origin, const model::Event& event,
                        const RouterOptions& opts, core::MatchScratch* scratch) {
  const size_t n = g.size();
  if (state.held.size() != n || origin >= n) {
    throw std::invalid_argument("routing state does not fit the graph");
  }
  if (opts.virtual_degrees && opts.virtual_degrees->size() != n) {
    throw std::invalid_argument("virtual_degrees size mismatch");
  }
  if (!opts.down.empty() && opts.down.size() != n) {
    throw std::invalid_argument("down size mismatch");
  }
  const auto is_down = [&](BrokerId b) -> bool {
    return !opts.down.empty() && opts.down[b];
  };
  if (is_down(origin)) throw std::invalid_argument("origin broker is down");
  const auto degree_of = [&](BrokerId b) -> int {
    return opts.virtual_degrees ? (*opts.virtual_degrees)[b]
                                : static_cast<int>(g.degree(b));
  };
  // Score of forwarding to b under the configured strategy; brocli is
  // captured by reference below so kLargestCoverage sees the current walk
  // state ("how many unexamined brokers would b's knowledge add").
  std::vector<char> brocli(n, 0);
  const auto score_of = [&](BrokerId b) -> int {
    if (opts.strategy == ForwardStrategy::kHighestDegree) return degree_of(b);
    int fresh = 0;
    for (BrokerId x : state.merged_brokers[b]) fresh += !brocli[x];
    return fresh;
  };

  RouteResult r;
  size_t brocli_count = 0;
  const auto add_to_brocli = [&](BrokerId b) {
    if (!brocli[b]) {
      brocli[b] = 1;
      ++brocli_count;
    }
  };

  BrokerId current = origin;
  // Virtual clock for span timestamps: one tick per span, so equal walks
  // produce byte-identical span logs (see RouteResult::spans).
  uint64_t vt = 0;
  const auto span = [&](obs::Phase phase, uint32_t peer, uint64_t bytes) {
    if (opts.trace_id) r.spans.push_back({opts.trace_id, current, phase, peer, vt++, bytes});
  };
  while (true) {
    r.visited.push_back(current);
    span(obs::Phase::kRecv, obs::Span::kNoPeer, 0);

    // Step 1: check the local merged summary for matches.
    std::vector<model::SubId> matched_buf;
    std::span<const model::SubId> matched;
    if (scratch) {
      matched = core::match_into(state.held[current], event, *scratch);
    } else {
      matched_buf = core::match(state.held[current], event);
      matched = matched_buf;
    }

    // Notify owners of fresh matches: owners already in the incoming BROCLI
    // were examined (and notified) by an earlier broker.
    std::map<BrokerId, std::vector<model::SubId>> by_owner;
    for (const auto& id : matched) {
      if (!brocli[id.broker]) by_owner[id.broker].push_back(id);
    }
    span(obs::Phase::kMatch, obs::Span::kNoPeer, matched.size());
    for (auto& [owner, ids] : by_owner) {
      const size_t id_count = ids.size();
      if (is_down(owner)) {
        // Over TCP the kDeliver would fail and sit in the redelivery
        // queue; here it is recorded as undeliverable (no hop counted).
        span(obs::Phase::kRetry, owner, id_count);
        r.undeliverable.push_back({current, owner, std::move(ids)});
        continue;
      }
      span(obs::Phase::kDeliver, owner, id_count);
      r.deliveries.push_back({current, owner, std::move(ids)});
      if (owner != current) ++r.delivery_hops;  // local delivery is free
    }

    // Step 2: update BROCLI with this broker's Merged_Brokers set.
    for (BrokerId b : state.merged_brokers[current]) add_to_brocli(b);

    // Step 4: continue while some broker's subscriptions are unexamined.
    // A down broker chosen as the best hop is skipped exactly the way the
    // TCP walk degrades: marked in BROCLI unexamined, no forward hop, and
    // the selection repeats among the survivors.
    std::optional<BrokerId> forward;
    while (brocli_count < n) {
      std::optional<BrokerId> next;
      size_t ties = 0;
      for (BrokerId b = 0; b < n; ++b) {
        if (brocli[b]) continue;
        if (!next || score_of(b) > score_of(*next)) {
          next = b;
          ties = 1;
        } else if (opts.tie_salt != 0 && score_of(b) == score_of(*next)) {
          // Reservoir-style rotation among equal-degree candidates.
          ++ties;
          if ((opts.tie_salt % ties) == 0) next = b;
        }
      }
      if (is_down(*next)) {
        add_to_brocli(*next);
        r.skipped.push_back(*next);
        span(obs::Phase::kRetry, *next, 0);
        continue;
      }
      forward = next;
      break;
    }
    if (!forward) break;
    span(obs::Phase::kForward, *forward, 0);
    ++r.forward_hops;
    current = *forward;
  }
  return r;
}

std::vector<int> capped_virtual_degrees(const overlay::Graph& g, int cap) {
  std::vector<int> v(g.size());
  for (BrokerId b = 0; b < g.size(); ++b) {
    v[b] = std::min(static_cast<int>(g.degree(b)), cap);
  }
  return v;
}

}  // namespace subsum::routing
