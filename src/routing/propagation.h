// Subscription summary propagation (paper §4.2, Algorithm 2).
//
// The phase runs max_degree iterations. In iteration i every broker whose
// overlay degree equals i (1) merges its own summary with everything it
// received in previous iterations, updating its Merged_Brokers set, and
// (2) sends the merged summary + Merged_Brokers to ONE neighbor of equal or
// higher degree with which it has not yet communicated, preferring the
// smallest such degree. A broker with no eligible neighbor (typically the
// maximum-degree broker) sends nothing and becomes a knowledge sink.
//
// The result intentionally leaves each broker with PARTIAL global knowledge
// (fig 7: broker 5 ends up knowing brokers 1-6 only); the BROCLI event walk
// (event_router.h) restores completeness.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/serialize.h"
#include "core/summary.h"
#include "overlay/graph.h"

namespace subsum::routing {

/// One summary message of the propagation phase (kept for tests/tracing).
struct PropagationSend {
  int iteration = 0;
  overlay::BrokerId from = 0;
  overlay::BrokerId to = 0;
  size_t bytes = 0;  // wire size of the merged summary + Merged_Brokers set
};

/// Per-broker outcome of one propagation phase.
struct PropagationResult {
  /// held[b]: b's own summary merged with everything b received.
  std::vector<core::BrokerSummary> held;
  /// merged_brokers[b]: ids whose subscriptions are included in held[b]
  /// (always contains b itself).
  std::vector<std::vector<overlay::BrokerId>> merged_brokers;
  /// Every summary message, in delivery order.
  std::vector<PropagationSend> sends;

  [[nodiscard]] size_t hops() const noexcept { return sends.size(); }
  [[nodiscard]] size_t total_bytes() const noexcept;
};

/// Which eligible neighbor (degree >= own, not yet communicated with) a
/// broker sends its merged summary to. The paper says "preferably the one
/// with the smallest degree"; sending uphill to the largest-degree
/// neighbor concentrates knowledge at the hubs faster, which shortens the
/// BROCLI walk (see bench_ablations).
enum class NeighborPreference : uint8_t {
  kSmallestDegree = 0,  // the paper's stated rule
  kLargestDegree = 1,
};

struct PropagationOptions {
  /// Bytes charged per broker id inside a Merged_Brokers set on the wire.
  size_t broker_id_bytes = 4;
  NeighborPreference preference = NeighborPreference::kSmallestDegree;
  /// Delivery timing within one iteration. The paper's wording ("summaries
  /// received in the previous iterations") suggests deferred delivery, but
  /// under it equal-degree neighbors swap summaries in parallel and merged
  /// knowledge strands below the hubs. With immediate (sequential, by
  /// broker id) delivery, same-degree chains concatenate inside an
  /// iteration — the behaviour a straightforward sequential simulator
  /// exhibits, and the one that reproduces the paper's event-hop numbers.
  /// Both satisfy the paper's figure-7 walkthrough.
  bool immediate_delivery = false;
};

/// Runs one propagation phase. `own[b]` is broker b's (delta) summary for
/// this period; all summaries must share one schema. The WireConfig is used
/// to account the bytes of each send.
PropagationResult propagate(const overlay::Graph& g, const std::vector<core::BrokerSummary>& own,
                            const core::WireConfig& wire,
                            const PropagationOptions& opts = {});

// --- epoch-based anti-entropy ------------------------------------------------
//
// Every broker stamps its summary announcements with a monotonically
// increasing EPOCH (its incarnation number, persisted by src/store and
// bumped on every restart). A receiver keeps the highest epoch observed
// per origin broker; the comparison below turns the state-based resends of
// the failure model (DESIGN.md §6) into a real anti-entropy rule:
//
//   kNewer   -- the origin restarted: every held row owned by it belongs
//               to a dead incarnation and must be discarded before the
//               fresh image is merged.
//   kStale   -- the announcement predates the origin's current
//               incarnation (a delayed pre-crash message): ignore it.
//   kCurrent -- same incarnation; plain idempotent merge.

enum class EpochCheck : uint8_t {
  kCurrent = 0,
  kNewer = 1,
  kStale = 2,
};

/// Highest epoch observed per origin broker. Epoch 0 means "epochs unused"
/// (ephemeral brokers); it never triggers a discard, preserving the plain
/// state-based-resend behaviour.
class EpochTable {
 public:
  EpochTable() = default;
  explicit EpochTable(size_t brokers) : epochs_(brokers, 0) {}

  /// Classifies an announcement from `origin` stamped `epoch`, updating
  /// the table to the maximum of the two.
  EpochCheck observe(overlay::BrokerId origin, uint64_t epoch);

  [[nodiscard]] uint64_t epoch_of(overlay::BrokerId origin) const {
    return origin < epochs_.size() ? epochs_[origin] : 0;
  }
  void set(overlay::BrokerId origin, uint64_t epoch);
  [[nodiscard]] size_t size() const noexcept { return epochs_.size(); }

 private:
  std::vector<uint64_t> epochs_;
};

}  // namespace subsum::routing
