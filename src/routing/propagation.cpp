#include "routing/propagation.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace subsum::routing {

using overlay::BrokerId;

size_t PropagationResult::total_bytes() const noexcept {
  size_t n = 0;
  for (const auto& s : sends) n += s.bytes;
  return n;
}

PropagationResult propagate(const overlay::Graph& g, const std::vector<core::BrokerSummary>& own,
                            const core::WireConfig& wire, const PropagationOptions& opts) {
  const size_t n = g.size();
  if (own.size() != n) {
    throw std::invalid_argument("one summary per broker required");
  }

  PropagationResult r;
  r.held = own;  // copies: held state starts as each broker's own summary
  r.merged_brokers.resize(n);
  for (BrokerId b = 0; b < n; ++b) r.merged_brokers[b] = {b};

  // communicated[b] = neighbors b has exchanged a summary with (either
  // direction), per "a neighbor with which it has not communicated in any
  // of the previous iterations".
  std::vector<std::set<BrokerId>> communicated(n);

  struct Pending {
    BrokerId from, to;
    core::BrokerSummary summary;
    std::vector<BrokerId> merged;
  };

  const auto deliver = [&](const Pending& p) {
    communicated[p.from].insert(p.to);
    communicated[p.to].insert(p.from);
    r.held[p.to].merge(p.summary);
    std::vector<BrokerId> merged;
    std::set_union(r.merged_brokers[p.to].begin(), r.merged_brokers[p.to].end(),
                   p.merged.begin(), p.merged.end(), std::back_inserter(merged));
    r.merged_brokers[p.to] = std::move(merged);
  };

  const size_t max_degree = g.max_degree();
  for (size_t it = 1; it <= max_degree; ++it) {
    std::vector<Pending> pending;
    for (BrokerId b = 0; b < n; ++b) {
      if (g.degree(b) != it) continue;
      // Select an eligible neighbor (degree >= own, not yet communicated
      // with), by the configured degree preference; ties break toward the
      // smaller id (neighbors are sorted).
      std::optional<BrokerId> target;
      for (BrokerId nb : g.neighbors(b)) {
        if (g.degree(nb) < it) continue;
        if (communicated[b].contains(nb)) continue;
        const bool better =
            !target ||
            (opts.preference == NeighborPreference::kSmallestDegree
                 ? g.degree(nb) < g.degree(*target)
                 : g.degree(nb) > g.degree(*target));
        if (better) target = nb;
      }
      if (!target) continue;  // knowledge sink: nothing to send
      Pending p{b, *target, r.held[b], r.merged_brokers[b]};
      r.sends.push_back({static_cast<int>(it), b, *target,
                         core::wire_size(r.held[b], wire) +
                             opts.broker_id_bytes * r.merged_brokers[b].size()});
      if (opts.immediate_delivery) {
        deliver(p);  // sequential semantics: same-iteration chains compose
      } else {
        pending.push_back(std::move(p));
      }
    }
    // Deferred semantics: deliveries land after all sends of the
    // iteration, so a broker acting now sends its pre-iteration state.
    for (auto& p : pending) deliver(p);
  }
  return r;
}

EpochCheck EpochTable::observe(overlay::BrokerId origin, uint64_t epoch) {
  // Epoch 0 means the origin does not persist state (ephemeral broker):
  // no incarnation ordering exists, so never judge it stale or newer.
  if (epoch == 0) return EpochCheck::kCurrent;
  if (origin >= epochs_.size()) epochs_.resize(origin + 1, 0);
  uint64_t& known = epochs_[origin];
  if (epoch < known) return EpochCheck::kStale;
  if (epoch > known && known > 0) {
    known = epoch;
    return EpochCheck::kNewer;
  }
  // First observation (known == 0) carries no prior state to discard.
  known = epoch;
  return EpochCheck::kCurrent;
}

void EpochTable::set(overlay::BrokerId origin, uint64_t epoch) {
  if (origin >= epochs_.size()) epochs_.resize(origin + 1, 0);
  epochs_[origin] = std::max(epochs_[origin], epoch);
}

}  // namespace subsum::routing
