// Runtime telemetry: a lock-cheap metrics registry with counters, gauges,
// and fixed-bucket log-scale histograms.
//
// Design goals, in order:
//   1. Hot-path cost ~ a couple of relaxed atomic adds. Registration takes
//      a mutex; Counter::inc / Gauge::set / Histogram::observe never do.
//   2. Handles are stable for the registry's lifetime — instrument code
//      pre-registers in its constructor and keeps raw pointers.
//   3. One snapshot path, Prometheus text exposition format, so any
//      scraper (or `tools/subsum_stats`) can read a live broker.
//
// Histograms use one bucket per power of two of the observed value
// (microseconds in all current call sites): observe(v) lands in bucket
// floor(log2(v)) + 1, i.e. bucket upper bounds 1, 2, 4, ... 2^62, +Inf.
// That is coarse (quantiles are exact only at bucket resolution — ±50%
// worst case) but makes observe() branch-free and the wire/exposition size
// fixed, which is what a per-match-call hot path can afford.
//
// Building with -DSUBSUM_NO_TELEMETRY compiles the mutating hot paths out
// (inc/set/observe become empty inlines); registration and exposition still
// work and report zeros. The bench guard in bench_matching measures the
// delta between the two builds.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace subsum::obs {

/// Escapes a label VALUE per Prometheus text exposition format 0.0.4:
/// `\` -> `\\`, `"` -> `\"`, newline -> `\n`. Apply before baking a value
/// into a metric name's label block; obs::parse_prometheus_text reverses it.
std::string escape_label_value(std::string_view v);

/// Builds `name{key="value"}` with the value escaped — the registry's
/// baked-label naming convention, made safe for arbitrary values.
std::string labeled(std::string_view name, std::string_view key, std::string_view value);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t by = 1) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    v_.fetch_add(by, std::memory_order_relaxed);
#else
    (void)by;
#endif
  }
  [[nodiscard]] uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (queue depths, sizes).
class Gauge {
 public:
  void set(int64_t v) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(int64_t by) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    v_.fetch_add(by, std::memory_order_relaxed);
#else
    (void)by;
#endif
  }
  [[nodiscard]] int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Instantaneous floating-point level (ratios, precision fractions). The
/// double travels as its bit pattern through one relaxed atomic, so set()
/// stays lock-free and tear-free.
class FGauge {
 public:
  void set(double v) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    v_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(v_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> v_{std::bit_cast<uint64_t>(0.0)};
};

/// Log-scale histogram: 64 fixed buckets, bucket i counts values whose
/// bit-width is i (upper bound 2^i - ... effectively le 2^(i-1) for i>=1;
/// bucket 0 counts zeros). Quantiles are reported as the upper bound of
/// the bucket containing the requested rank.
///
/// Histograms registered with exemplars enabled additionally keep, per
/// bucket, the most recent (trace id, value) pair observed there via
/// observe_ex() — so a p99 bucket always names a concrete trace that can
/// be resolved to its span chain (`subsum_stats --trace`). Exposition
/// appends them OpenMetrics-style: `..._bucket{le="X"} N # {trace_id="…"} v`.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// One bucket's retained exemplar; trace == 0 means "none yet".
  struct Exemplar {
    uint64_t trace = 0;
    uint64_t value = 0;
  };

  void observe(uint64_t v) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  /// observe() plus exemplar retention: the value's bucket remembers this
  /// trace id (last writer wins; relaxed stores, so a reader may pair a
  /// torn trace/value across two concurrent observes — acceptable for a
  /// debugging breadcrumb). trace 0 (untraced) records no exemplar.
  void observe_ex(uint64_t v, uint64_t trace) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    const size_t b = bucket_of(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    if (trace != 0) {
      if (ExemplarSlot* ex = exemplars_.load(std::memory_order_acquire)) {
        ex[b].value.store(v, std::memory_order_relaxed);
        ex[b].trace.store(trace, std::memory_order_relaxed);
      }
    }
#else
    (void)v;
    (void)trace;
#endif
  }

  /// Allocates the per-bucket exemplar slots (idempotent). Call at
  /// registration time, i.e. before the histogram is observed from other
  /// threads; until called, observe_ex() degrades to observe().
  void enable_exemplars();

  /// The exemplar retained by bucket i, or {0, 0} when none/disabled.
  [[nodiscard]] Exemplar exemplar(size_t bucket) const noexcept;

  [[nodiscard]] uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound (inclusive) of the bucket holding rank ceil(q * count);
  /// 0 when empty. q in [0, 1].
  [[nodiscard]] uint64_t quantile(double q) const noexcept;

  /// Per-bucket counts (index = bit width of the value, 0..64).
  [[nodiscard]] std::array<uint64_t, kBuckets + 1> snapshot() const noexcept;

  /// Zeroes every bucket plus count and sum. Not linearizable against a
  /// concurrent observe(); intended for distributions that are REcomputed
  /// from scratch on the admin path (e.g. summary row occupancy, refreshed
  /// on every scrape/merge) rather than accumulated.
  void reset() noexcept;

  /// Upper bound of bucket i: 0 for i=0, else 2^i - 1.
  static constexpr uint64_t bucket_bound(size_t i) noexcept {
    return i == 0 ? 0 : (i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1);
  }

  static constexpr size_t bucket_of(uint64_t v) noexcept {
    return static_cast<size_t>(std::bit_width(v));  // 0..64; 64 only for v with bit 63 set
  }

 private:
  struct ExemplarSlot {
    std::atomic<uint64_t> trace{0};
    std::atomic<uint64_t> value{0};
  };

  std::array<std::atomic<uint64_t>, kBuckets + 1> buckets_{};  // [0..64]
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  // Lazily allocated by enable_exemplars(); published with release so a
  // relaxed observer that wins the race simply skips the exemplar.
  std::atomic<ExemplarSlot*> exemplars_{nullptr};
  std::unique_ptr<ExemplarSlot[]> exemplars_owned_;
};

/// Owns named metrics; handles stay valid for the registry's lifetime.
/// Metric names follow Prometheus conventions: `subsum_<what>_<unit>` with
/// optional labels baked into the name (`subsum_peer_rpc_latency_us{peer="3"}`).
class MetricsRegistry {
 public:
  /// Get-or-register. The returned pointer is stable; repeated calls with
  /// the same name return the same object.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  FGauge* fgauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  /// Get-or-register with exemplar slots enabled (enables them on an
  /// already-registered histogram too).
  Histogram* histogram_ex(std::string_view name);

  /// Current value of a counter, 0 when never registered (test helper).
  [[nodiscard]] uint64_t counter_value(std::string_view name) const;

  /// Prometheus text exposition format, version 0.0.4: one `# TYPE` line
  /// per metric family (the name up to any '{'), then the samples.
  /// Histograms expand to `_bucket{le=...}` / `_sum` / `_count` series
  /// with cumulative bucket counts; empty buckets are elided (the +Inf
  /// bucket is always present).
  [[nodiscard]] std::string prometheus_text() const;

 private:
  template <typename T>
  using Map = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  mutable std::mutex mu_;  // registration + snapshot only, never per-sample
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<FGauge> fgauges_;
  Map<Histogram> histograms_;
};

}  // namespace subsum::obs
