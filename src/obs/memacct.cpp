#include "obs/memacct.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace subsum::obs {

std::string_view to_string(MemComponent c) noexcept {
  switch (c) {
    case MemComponent::kIndexArenas:
      return "index_arenas";
    case MemComponent::kHeldSummary:
      return "held_summary";
    case MemComponent::kShadowSummaries:
      return "shadow_summaries";
    case MemComponent::kWalBuffers:
      return "wal_buffers";
    case MemComponent::kSnapshotBuffers:
      return "snapshot_buffers";
    case MemComponent::kOutboundQueues:
      return "outbound_queues";
    case MemComponent::kRedeliveryQueue:
      return "redelivery_queue";
    case MemComponent::kTraceRing:
      return "trace_ring";
    case MemComponent::kFlightRing:
      return "flight_ring";
    case MemComponent::kExemplarSlots:
      return "exemplar_slots";
    case MemComponent::kProfilerRing:
      return "profiler_ring";
  }
  return "unknown";
}

void MemAccount::bind_metrics(MetricsRegistry& m) {
  for (size_t i = 0; i < kMemComponentCount; ++i) {
    const auto c = static_cast<MemComponent>(i);
    gauges_[i] = m.gauge(labeled("subsum_mem_bytes", "component", to_string(c)));
    gauges_[i]->set(static_cast<int64_t>(bytes_[i].load(std::memory_order_relaxed)));
  }
}

void MemAccount::set(MemComponent c, uint64_t bytes) noexcept {
  const auto i = static_cast<size_t>(c);
  bytes_[i].store(bytes, std::memory_order_relaxed);
  if (gauges_[i] != nullptr) gauges_[i]->set(static_cast<int64_t>(bytes));
}

void MemAccount::add(MemComponent c, int64_t delta) noexcept {
  const auto i = static_cast<size_t>(c);
  const uint64_t now =
      bytes_[i].fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed) +
      static_cast<uint64_t>(delta);
  if (gauges_[i] != nullptr) gauges_[i]->set(static_cast<int64_t>(now));
}

uint64_t MemAccount::get(MemComponent c) const noexcept {
  return bytes_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
}

uint64_t MemAccount::total() const noexcept {
  uint64_t sum = 0;
  for (const auto& b : bytes_) sum += b.load(std::memory_order_relaxed);
  return sum;
}

uint64_t MemAccount::governor_external_bytes() const noexcept {
  // Growth components only. The queues are excluded because the governor
  // already streams them through add_usage/sub_usage (counting them here
  // would double-bill), and the fixed-capacity rings + exemplar slots are
  // excluded because they are config-sized baseline allocations: charging
  // them would put small-budget deployments permanently on the ladder at
  // idle, turning a degradation signal into a constant tax.
  return get(MemComponent::kIndexArenas) + get(MemComponent::kHeldSummary) +
         get(MemComponent::kShadowSummaries) + get(MemComponent::kWalBuffers) +
         get(MemComponent::kSnapshotBuffers);
}

ProcessStats read_process_stats() noexcept {
  ProcessStats ps;
#if defined(__linux__)
  const long page = sysconf(_SC_PAGESIZE);
  const long ticks = sysconf(_SC_CLK_TCK);
  if (page <= 0 || ticks <= 0) return ps;

  // /proc/self/statm: "size resident shared ..." in pages.
  {
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) return ps;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2) return ps;
    ps.rss_bytes = static_cast<uint64_t>(resident) * static_cast<uint64_t>(page);
  }

  // /proc/self/stat: field 2 is "(comm)" and may contain spaces, so parse
  // from the LAST ')'. utime/stime are fields 14/15, num_threads field 20
  // (1-based), i.e. 12/13/18 counting from the field after "(comm) S".
  {
    std::FILE* f = std::fopen("/proc/self/stat", "r");
    if (f == nullptr) return ps;
    char buf[1024];
    const size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const char* p = std::strrchr(buf, ')');
    if (p == nullptr) return ps;
    ++p;  // now at " S ppid ..."
    unsigned long long utime = 0, stime = 0;
    long long num_threads = 0;
    // After ')': state(1) ppid(2) pgrp(3) session(4) tty(5) tpgid(6)
    // flags(7) minflt(8) cminflt(9) majflt(10) cmajflt(11) utime(12)
    // stime(13) cutime(14) cstime(15) priority(16) nice(17) threads(18).
    const int got = std::sscanf(
        p, " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu %*d %*d %*d %*d %lld",
        &utime, &stime, &num_threads);
    if (got != 3) return ps;
    ps.utime_sec = static_cast<double>(utime) / static_cast<double>(ticks);
    ps.stime_sec = static_cast<double>(stime) / static_cast<double>(ticks);
    ps.threads = num_threads > 0 ? static_cast<uint64_t>(num_threads) : 0;
  }

  // /proc/self/fd: one entry per open descriptor (minus . and ..).
  {
    DIR* d = opendir("/proc/self/fd");
    if (d == nullptr) return ps;
    uint64_t count = 0;
    while (const dirent* e = readdir(d)) {
      if (e->d_name[0] != '.') ++count;
    }
    closedir(d);
    ps.open_fds = count > 0 ? count - 1 : 0;  // exclude the opendir fd itself
  }

  ps.ok = true;
#endif
  return ps;
}

void ProcessGauges::bind_metrics(MetricsRegistry& m) {
  rss_ = m.gauge("subsum_process_rss_bytes");
  cpu_user_ = m.fgauge(labeled("subsum_process_cpu_seconds_total", "mode", "user"));
  cpu_sys_ = m.fgauge(labeled("subsum_process_cpu_seconds_total", "mode", "sys"));
  fds_ = m.gauge("subsum_process_open_fds");
  threads_ = m.gauge("subsum_process_threads");
}

void ProcessGauges::refresh() noexcept {
  if (rss_ == nullptr) return;
  const ProcessStats ps = read_process_stats();
  if (!ps.ok) return;
  rss_->set(static_cast<int64_t>(ps.rss_bytes));
  cpu_user_->set(ps.utime_sec);
  cpu_sys_->set(ps.stime_sec);
  fds_->set(static_cast<int64_t>(ps.open_fds));
  threads_->set(static_cast<int64_t>(ps.threads));
}

}  // namespace subsum::obs
