#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace subsum::obs {

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled(std::string_view name, std::string_view key, std::string_view value) {
  std::string out(name);
  out.append("{").append(key).append("=\"").append(escape_label_value(value)).append("\"}");
  return out;
}

uint64_t Histogram::quantile(double q) const noexcept {
  const auto counts = snapshot();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i <= kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return bucket_bound(i);
  }
  return bucket_bound(kBuckets);
}

std::array<uint64_t, Histogram::kBuckets + 1> Histogram::snapshot() const noexcept {
  std::array<uint64_t, kBuckets + 1> out{};
  for (size_t i = 0; i <= kBuckets; ++i) out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::enable_exemplars() {
  if (exemplars_.load(std::memory_order_acquire) != nullptr) return;
  exemplars_owned_ = std::make_unique<ExemplarSlot[]>(kBuckets + 1);
  exemplars_.store(exemplars_owned_.get(), std::memory_order_release);
}

Histogram::Exemplar Histogram::exemplar(size_t bucket) const noexcept {
  const ExemplarSlot* ex = exemplars_.load(std::memory_order_acquire);
  if (ex == nullptr || bucket > kBuckets) return {};
  return {ex[bucket].trace.load(std::memory_order_relaxed),
          ex[bucket].value.load(std::memory_order_relaxed)};
}

void Histogram::reset() noexcept {
  for (size_t i = 0; i <= kBuckets; ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

FGauge* MetricsRegistry::fgauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = fgauges_.find(name);
  if (it == fgauges_.end()) {
    it = fgauges_.emplace(std::string(name), std::make_unique<FGauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram_ex(std::string_view name) {
  Histogram* h = histogram(name);
  h->enable_exemplars();
  return h;
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

namespace {

/// The metric family: the name up to any label block.
std::string_view family_of(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// Merges `le="v"` into a (possibly empty) `{...}` label block.
std::string with_le(std::string_view labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  std::string out(labels.substr(0, labels.size() - 1));  // drop the closing '}'
  out.append(",le=\"").append(le).append("\"}");
  return out;
}

void type_line(std::ostream& os, std::string_view* last_family, std::string_view name,
               const char* type) {
  const std::string_view fam = family_of(name);
  if (*last_family == fam) return;
  *last_family = fam;
  os << "# TYPE " << fam << " " << type << "\n";
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  std::string_view last;

  for (const auto& [name, c] : counters_) {
    type_line(os, &last, name, "counter");
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    type_line(os, &last, name, "gauge");
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, g] : fgauges_) {
    type_line(os, &last, name, "gauge");
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    type_line(os, &last, name, "histogram");
    const auto counts = h->snapshot();
    const std::string_view fam = family_of(name);
    const std::string_view labels =
        std::string_view(name).substr(fam.size());  // "{...}" or ""
    uint64_t cum = 0;
    for (size_t i = 0; i <= Histogram::kBuckets; ++i) {
      if (counts[i] == 0) continue;  // elide empty buckets; +Inf emitted below
      cum += counts[i];
      os << fam << "_bucket" << with_le(labels, std::to_string(Histogram::bucket_bound(i)))
         << " " << cum;
      // OpenMetrics-style exemplar: the most recent trace that landed in
      // this bucket. Trailing comment, so 0.0.4-only parsers still read
      // the value (strtod stops at the space).
      if (const auto ex = h->exemplar(i); ex.trace != 0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, " # {trace_id=\"%016llx\"} %llu",
                      static_cast<unsigned long long>(ex.trace),
                      static_cast<unsigned long long>(ex.value));
        os << buf;
      }
      os << "\n";
    }
    os << fam << "_bucket" << with_le(labels, "+Inf") << " " << h->count() << "\n";
    os << fam << "_sum" << labels << " " << h->sum() << "\n";
    os << fam << "_count" << labels << " " << h->count() << "\n";
  }
  return os.str();
}

}  // namespace subsum::obs
