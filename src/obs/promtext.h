// Parser for the Prometheus text exposition format 0.0.4 — the inverse of
// MetricsRegistry::prometheus_text(). One implementation serves both the
// fleet collector (tools/subsum_top scrapes live brokers) and the escaping
// round-trip tests, so writer and reader cannot drift apart silently.
//
// Scope: the subset the registry emits plus standard-conforming variants —
// `name value`, `name{k="v",...} value [timestamp]`, `# TYPE` / `# HELP` /
// comment lines, label values with `\\` `\"` `\n` escapes. Malformed lines
// are skipped, not fatal: a scrape of a half-written or foreign exposition
// should degrade to the parseable samples.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subsum::obs {

/// Reverses escape_label_value(): `\\` -> `\`, `\"` -> `"`, `\n` -> newline.
/// Unknown escapes keep the backslash verbatim (lenient, like Prometheus).
std::string unescape_label_value(std::string_view v);

/// One parsed sample line.
struct PromSample {
  std::string name;  // metric name without the label block
  std::vector<std::pair<std::string, std::string>> labels;  // unescaped, in order
  double value = 0;
  /// OpenMetrics-style exemplar suffix (` # {trace_id="…"} v`), as emitted
  /// by MetricsRegistry on histogram bucket lines. Empty trace = none. A
  /// malformed exemplar is dropped without invalidating the sample.
  std::string exemplar_trace;  // label value of trace_id, verbatim (hex)
  double exemplar_value = 0;

  /// Value of a label, or nullptr when absent.
  [[nodiscard]] const std::string* label(std::string_view key) const noexcept;
};

/// Parses a full exposition. Comment/TYPE/HELP and malformed lines are
/// skipped; sample order is preserved.
std::vector<PromSample> parse_prometheus_text(std::string_view text);

}  // namespace subsum::obs
