#include "obs/latency.h"

namespace subsum::obs {

std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kIngressDecode:
      return "ingress_decode";
    case Stage::kAdmission:
      return "admission";
    case Stage::kWalFsync:
      return "wal_fsync";
    case Stage::kMatch:
      return "match";
    case Stage::kRouteHop:
      return "route_hop";
    case Stage::kOutboundQueue:
      return "outbound_queue";
    case Stage::kWriterFlush:
      return "writer_flush";
    case Stage::kE2e:
      return "e2e";
  }
  return "?";
}

StageSet::StageSet(MetricsRegistry& m) {
  for (size_t i = 0; i < kStageCount; ++i) {
    hists_[i] = m.histogram_ex(
        labeled("subsum_stage_latency_us", "stage", to_string(static_cast<Stage>(i))));
  }
}

}  // namespace subsum::obs
