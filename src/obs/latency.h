// Stage-decomposed end-to-end latency: every event's life at a broker is
// split into named stages, each feeding one labeled histogram
// (`subsum_stage_latency_us{stage="..."}`) with exemplars enabled — the
// high buckets retain the most recent trace id that landed there, so a
// p99 spike in any stage is one `subsum_stats --trace <id>` away from its
// full causal span chain.
//
// Stages, in event order:
//   ingress_decode  wire frame -> model::Event (on_publish / on_event)
//   admission       governor admission check on publish
//   wal_fsync       BrokerStore::commit() fsync (durable brokers only)
//   match           merged-summary match (walk_step)
//   route_hop       one successful peer RPC round trip (kEvent / kDeliver)
//   outbound_queue  dwell time in a connection's outbound queue
//   writer_flush    the writer thread's send_frame() for one data frame
//   e2e             publish ingress -> walk complete (broker-observed)
//
// The registration helper pre-registers every stage at construction so the
// observe path is a pointer index plus Histogram::observe_ex — no lookups,
// no locks, and it all compiles out under -DSUBSUM_NO_TELEMETRY.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace subsum::obs {

enum class Stage : uint8_t {
  kIngressDecode = 0,
  kAdmission,
  kWalFsync,
  kMatch,
  kRouteHop,
  kOutboundQueue,
  kWriterFlush,
  kE2e,
};

inline constexpr size_t kStageCount = 8;

/// "ingress_decode", "admission", ... (stable exposition label values).
std::string_view to_string(Stage s) noexcept;

/// Pre-registered per-stage histograms over one registry.
class StageSet {
 public:
  explicit StageSet(MetricsRegistry& m);

  void observe(Stage s, uint64_t us, uint64_t trace = 0) noexcept {
    hists_[static_cast<size_t>(s)]->observe_ex(us, trace);
  }

  [[nodiscard]] Histogram* hist(Stage s) const noexcept {
    return hists_[static_cast<size_t>(s)];
  }

 private:
  std::array<Histogram*, kStageCount> hists_{};
};

}  // namespace subsum::obs
