#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace subsum::obs {

std::string_view to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kRecv:
      return "recv";
    case Phase::kMatch:
      return "match";
    case Phase::kForward:
      return "forward";
    case Phase::kDeliver:
      return "deliver";
    case Phase::kRetry:
      return "retry";
    case Phase::kRedeliver:
      return "redeliver";
  }
  return "?";
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

void TraceRing::append(const Span& s) {
#ifndef SUBSUM_NO_TELEMETRY
  std::lock_guard lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    ring_[next_] = s;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
  ++appended_;
#else
  (void)s;
#endif
}

std::vector<Span> TraceRing::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest retained span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> TraceRing::for_trace(uint64_t trace) const {
  std::vector<Span> out;
  for (const Span& s : snapshot()) {
    if (s.trace == trace) out.push_back(s);
  }
  return out;
}

uint64_t TraceRing::appended() const {
  std::lock_guard lk(mu_);
  return appended_;
}

uint64_t TraceRing::retained() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

uint64_t TraceRing::dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void TraceRing::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  next_ = 0;
}

std::string to_jsonl(std::span<const Span> spans) {
  std::string out;
  out.reserve(spans.size() * 96);
  char buf[192];
  for (const Span& s : spans) {
    int n;
    if (s.peer != Span::kNoPeer) {
      n = std::snprintf(buf, sizeof buf,
                        "{\"trace\":\"%016llx\",\"broker\":%u,\"phase\":\"%s\","
                        "\"peer\":%u,\"t_us\":%llu,\"bytes\":%llu}\n",
                        static_cast<unsigned long long>(s.trace), s.broker,
                        to_string(s.phase).data(), s.peer,
                        static_cast<unsigned long long>(s.t_us),
                        static_cast<unsigned long long>(s.bytes));
    } else {
      n = std::snprintf(buf, sizeof buf,
                        "{\"trace\":\"%016llx\",\"broker\":%u,\"phase\":\"%s\","
                        "\"t_us\":%llu,\"bytes\":%llu}\n",
                        static_cast<unsigned long long>(s.trace), s.broker,
                        to_string(s.phase).data(),
                        static_cast<unsigned long long>(s.t_us),
                        static_cast<unsigned long long>(s.bytes));
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

uint64_t mint_trace_id(uint32_t broker, uint64_t seq, uint64_t salt) noexcept {
  // splitmix64 finalizer over the packed inputs; bijective per salt, so
  // (broker, seq) collisions cannot happen within one salt stream.
  uint64_t x = (static_cast<uint64_t>(broker) << 48) ^ seq ^ (salt * 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x ? x : 1;  // 0 is reserved for "untraced"
}

#ifndef SUBSUM_NO_TELEMETRY
uint64_t now_us() noexcept {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - origin)
                                   .count());
}
#endif

}  // namespace subsum::obs
