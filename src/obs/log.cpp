#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <string>

namespace subsum::obs {

namespace {

uint64_t wall_us() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t steady_us() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view to_string(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view s) noexcept {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void Logger::configure(LogLevel min_level, std::FILE* sink, uint32_t broker,
                       uint64_t max_lines_per_sec) noexcept {
  min_level_.store(static_cast<uint8_t>(min_level), std::memory_order_relaxed);
  sink_ = sink != nullptr ? sink : stderr;
  broker_ = broker;
  max_per_sec_ = max_lines_per_sec ? max_lines_per_sec : 1;
}

void Logger::log(LogLevel l, std::string_view component, std::string_view msg,
                 uint64_t trace, std::initializer_list<LogKv> kv) {
#ifndef SUBSUM_NO_TELEMETRY
  if (!enabled(l) || l == LogLevel::kOff) return;

  std::string line;
  line.reserve(128);
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"ts_us\":%" PRIu64 ",\"level\":\"", wall_us());
  line += buf;
  line += to_string(l);
  std::snprintf(buf, sizeof buf, "\",\"broker\":%u,\"component\":\"", broker_);
  line += buf;
  json_escape(component, line);
  line += "\",\"msg\":\"";
  json_escape(msg, line);
  line += '"';
  if (trace != 0) {
    std::snprintf(buf, sizeof buf, ",\"trace\":\"%016" PRIx64 "\"", trace);
    line += buf;
  }
  for (const LogKv& e : kv) {
    line += ",\"";
    json_escape(e.key, line);
    std::snprintf(buf, sizeof buf, "\":%" PRId64, e.value);
    line += buf;
  }
  line += "}\n";

  const uint64_t now = steady_us();
  std::lock_guard lk(mu_);
  if (now - window_start_us_ >= 1000000) {
    if (window_suppressed_ > 0) {
      char sup[160];
      const int n = std::snprintf(
          sup, sizeof sup,
          "{\"ts_us\":%" PRIu64 ",\"level\":\"info\",\"broker\":%u,"
          "\"component\":\"log\",\"msg\":\"rate limited\","
          "\"suppressed\":%" PRIu64 "}\n",
          wall_us(), broker_, window_suppressed_);
      std::fwrite(sup, 1, static_cast<size_t>(n), sink_);
    }
    window_start_us_ = now;
    window_count_ = 0;
    window_suppressed_ = 0;
  }
  if (window_count_ >= max_per_sec_) {
    ++window_suppressed_;
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++window_count_;
  emitted_.fetch_add(1, std::memory_order_relaxed);
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
#else
  (void)l; (void)component; (void)msg; (void)trace; (void)kv;
#endif
}

}  // namespace subsum::obs
