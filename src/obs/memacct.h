// Per-component memory attribution: where a live broker's bytes actually
// are. The paper's efficiency claim is a memory claim as much as a CPU
// claim (summaries ARE the routing state, §3-§4), so the broker accounts
// its big owners explicitly — frozen-index arenas, held/shadow summary
// images, WAL + snapshot buffers, outbound queues, the trace/flight/
// profiler rings, exemplar slots — and exports each as
// `subsum_mem_bytes{component=...}`.
//
// Two consumers, two contracts:
//
//   1. Telemetry. Each component mirrors into a registry gauge (no-op
//      under -DSUBSUM_NO_TELEMETRY like every obs mirror). The components
//      are designed to sum to within shouting distance of RSS-minus-
//      baseline, so an operator can see WHICH subsystem grew, not just
//      that the process did.
//
//   2. Policy. governor_external_bytes() — the components the governor's
//      own outbound/redelivery usage accounting does NOT already cover —
//      feeds Governor::set_external_bytes(), so the degradation ladder
//      degrades on measured broker memory instead of queue bytes alone.
//      Like the governor itself, the byte accounting lives on plain
//      atomics that exist in BOTH builds: ladder arithmetic is identical
//      with telemetry compiled out, and tests can inject readings
//      deterministically.
//
// Also here: /proc/self process-level gauges (RSS, utime/stime, open fds,
// thread count), a graceful no-op on platforms without procfs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace subsum::obs {

/// The accounted owners. Fixed set (bounded label cardinality); extend
/// here and in to_string() together.
enum class MemComponent : uint8_t {
  kIndexArenas = 0,    // frozen-index slot/entry/row arenas (core/frozen_index.h)
  kHeldSummary,        // the held merged summary's wire image
  kShadowSummaries,    // per-sender mirrored images (delta bases)
  kWalBuffers,         // WAL records appended since the last compaction
  kSnapshotBuffers,    // the last snapshot encoding
  kOutboundQueues,     // per-connection outbound queues (governor-accounted)
  kRedeliveryQueue,    // pending kDeliver payloads (governor-accounted)
  kTraceRing,          // obs/trace.h span ring
  kFlightRing,         // obs/flight_recorder.h slot ring
  kExemplarSlots,      // per-bucket exemplar retention across histograms
  kProfilerRing,       // obs/profiler.h sample ring
};
inline constexpr size_t kMemComponentCount = 11;

/// "index_arenas", "held_summary", ... (stable label values).
std::string_view to_string(MemComponent c) noexcept;

/// Thread-safe byte ledger, one slot per component. set() is an absolute
/// refresh (the admin/scrape path recomputes sizes from the owners);
/// add() is for owners that account incrementally.
class MemAccount {
 public:
  MemAccount() = default;
  MemAccount(const MemAccount&) = delete;
  MemAccount& operator=(const MemAccount&) = delete;

  /// Registers the subsum_mem_bytes{component=...} gauge family in `m` and
  /// mirrors every subsequent set()/add() into it. Optional: an unbound
  /// account still keeps the byte ledger (policy input needs no registry).
  void bind_metrics(MetricsRegistry& m);

  void set(MemComponent c, uint64_t bytes) noexcept;
  void add(MemComponent c, int64_t delta) noexcept;
  [[nodiscard]] uint64_t get(MemComponent c) const noexcept;

  /// Sum over all components.
  [[nodiscard]] uint64_t total() const noexcept;

  /// The degradation ladder's external input: the GROWTH components
  /// (index arenas, held/shadow summaries, WAL + snapshot bytes). Excludes
  /// the queues — the governor already streams those through
  /// add_usage/sub_usage — and the fixed-capacity rings, which are
  /// config-sized baseline, not load.
  [[nodiscard]] uint64_t governor_external_bytes() const noexcept;

 private:
  std::atomic<uint64_t> bytes_[kMemComponentCount] = {};
  Gauge* gauges_[kMemComponentCount] = {};  // null until bind_metrics
};

/// One reading of /proc/self. ok = false when any file was unreadable
/// (non-Linux, locked-down /proc): every field then stays 0.
struct ProcessStats {
  bool ok = false;
  uint64_t rss_bytes = 0;
  double utime_sec = 0.0;  // user-mode CPU consumed since process start
  double stime_sec = 0.0;  // kernel-mode CPU
  uint64_t open_fds = 0;
  uint64_t threads = 0;
};

/// Parses /proc/self/{statm,stat,fd}. Never throws; failure yields
/// ok = false.
[[nodiscard]] ProcessStats read_process_stats() noexcept;

/// Registry mirror for ProcessStats: subsum_process_rss_bytes,
/// subsum_process_cpu_seconds_total{mode=user|sys},
/// subsum_process_open_fds, subsum_process_threads. refresh() re-reads
/// /proc and is a graceful no-op when unbound or procfs is absent.
class ProcessGauges {
 public:
  void bind_metrics(MetricsRegistry& m);
  void refresh() noexcept;

 private:
  Gauge* rss_ = nullptr;
  FGauge* cpu_user_ = nullptr;
  FGauge* cpu_sys_ = nullptr;
  Gauge* fds_ = nullptr;
  Gauge* threads_ = nullptr;
};

}  // namespace subsum::obs
