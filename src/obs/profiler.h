// Always-available sampling CPU profiler: answers "where does this broker
// burn CPU, right now, in production" without restarting it.
//
// Mechanism: every registered thread gets a POSIX per-thread CPU-time
// timer (timer_create on its pthread CPU clock, SIGEV_THREAD_ID) firing
// SIGPROF at a configurable Hz OF THAT THREAD'S CPU TIME — an idle thread
// is never interrupted, so sample counts are proportional to actual CPU
// burn per thread, exactly the attribution the flamegraph needs. The
// handler captures a frame-pointer backtrace (bounded, stack-range
// checked, no libc calls) into a wait-free sample ring reusing the
// flight-recorder per-slot seqlock pattern: one relaxed fetch_add claims
// a ticket, seq = 2t+1 while writing / 2t+2 done, and a racing reader
// discards torn slots instead of blocking the handler.
//
// Everything expensive is lazy and off the signal path: symbolization
// (dladdr + demangle, cached) and aggregation happen in folded(), which
// drains the ring into collapsed/folded stacks —
//
//     role;outer_frame;...;leaf_frame count\n
//
// — the format flamegraph.pl / speedscope consume directly. The leading
// frame is the thread's ROLE (accept|conn|writer|walk|fsync|main), set by
// register_thread()/ScopedRole at the thread's entry point, so samples
// attribute to broker subsystems even where symbols are unavailable.
//
// Duty cycle: cpu_seconds() reads every registered thread's CPU clock
// (plus totals retired at thread exit), per role. Deltas over wall time
// give each role's busy fraction in cores — the "is the walk thread the
// bottleneck" gauge.
//
// Process-wide by necessity (signal handlers are), hence the singleton.
// Registration is cheap and always available ("armed"); sampling costs
// nothing until start(). Under -DSUBSUM_NO_TELEMETRY the whole mechanism
// compiles out: every call is an inert inline no-op, start() refuses, and
// the kProfile RPC reports a stopped profiler — wire format intact, sim
// runs byte-identical. The simulator never arms it (virtual time has no
// CPU clock worth sampling).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subsum::obs {

/// Broker thread roles, the folded stacks' root frames and the
/// subsum_cpu_samples_total / duty-cycle label set.
enum class ThreadRole : uint8_t {
  kMain = 0,   // the process / controller loop
  kAccept,     // the listener's accept loop
  kConn,       // per-connection frame handlers
  kWriter,     // per-connection outbound-queue writers
  kWalk,       // BROCLI walk execution (scoped, on conn threads)
  kFsync,      // WAL group-commit fsyncs (scoped, on conn threads)
  kOther,      // registered without a role
};
inline constexpr size_t kThreadRoleCount = 7;

/// Default sampling rate (kProfile kStart with hz == 0, and the
/// `--profile-hz` flag's bare form). Prime, so the sampler cannot lock
/// onto periodic broker work and alias it in or out of the profile.
inline constexpr uint32_t kDefaultProfileHz = 97;

/// "main", "accept", ... (stable label values).
std::string_view to_string(ThreadRole r) noexcept;

/// Parses folded-stack text into (stack, count) pairs, one per line;
/// malformed lines are skipped. Shared by tests and tools; available in
/// every build.
std::vector<std::pair<std::string, uint64_t>> parse_folded(std::string_view text);

#ifndef SUBSUM_NO_TELEMETRY

class Profiler {
 public:
  /// Frames retained per sample (leaf + callers). Deeper stacks truncate.
  static constexpr size_t kMaxFrames = 32;
  /// Default sample-ring capacity (samples). At 97 Hz across a handful of
  /// busy threads this holds tens of seconds between drains.
  static constexpr size_t kDefaultRingCapacity = 4096;

  static Profiler& instance() noexcept;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // --- thread registry -------------------------------------------------------
  /// Registers the calling thread under `role` (idempotent: a second call
  /// just updates the role). Registered threads are sampled while the
  /// profiler runs and contribute to duty-cycle accounting; the slot is
  /// reclaimed automatically at thread exit.
  static void register_thread(ThreadRole role) noexcept;

  /// Temporarily relabels the calling thread's samples (e.g. a conn
  /// thread executing a BROCLI walk step or a WAL fsync).
  class ScopedRole {
   public:
    explicit ScopedRole(ThreadRole r) noexcept;
    ~ScopedRole();
    ScopedRole(const ScopedRole&) = delete;
    ScopedRole& operator=(const ScopedRole&) = delete;

   private:
    uint8_t prev_;
  };

  // --- sampling lifecycle ----------------------------------------------------
  /// Arms per-thread timers at `hz` samples per CPU-second and installs
  /// the SIGPROF handler. Returns false when hz == 0, already running, or
  /// the platform refuses per-thread timers. Threads registered later are
  /// armed on registration.
  bool start(uint32_t hz) noexcept;
  /// Disarms all timers. Samples already in the ring remain drainable.
  void stop() noexcept;
  [[nodiscard]] bool running() const noexcept;
  [[nodiscard]] uint32_t hz() const noexcept;

  /// Resizes the sample ring; effective at the next start() on an idle
  /// profiler (ignored while running). 0 keeps the current capacity.
  void set_ring_capacity(size_t samples) noexcept;

  // --- data out --------------------------------------------------------------
  /// Samples captured since process start (ring overwrites included).
  [[nodiscard]] uint64_t samples_total() const noexcept;
  [[nodiscard]] uint64_t samples_for(ThreadRole r) const noexcept;
  /// Samples lost to ring overwrite before a drain could read them.
  [[nodiscard]] uint64_t dropped_total() const noexcept;

  /// Drains every undrained sample, symbolizes (cached dladdr +
  /// demangle), and returns collapsed stacks, newest aggregation of
  /// everything since the previous drain. Never called from a signal
  /// context; takes the profiler mutex.
  [[nodiscard]] std::string folded();

  /// Bytes held by the sample ring (memacct kProfilerRing input).
  [[nodiscard]] uint64_t ring_bytes() const noexcept;

  // --- duty cycle ------------------------------------------------------------
  /// Cumulative CPU seconds consumed per role: live registered threads'
  /// CPU clocks plus totals retired at thread exit. `out` must hold
  /// kThreadRoleCount entries. Deltas over wall time = busy cores per role.
  void cpu_seconds(double* out) const noexcept;

  /// Currently registered (live) threads.
  [[nodiscard]] uint64_t thread_count() const noexcept;

 private:
  Profiler() = default;
};

#else  // SUBSUM_NO_TELEMETRY: the profiler compiles out entirely.

class Profiler {
 public:
  static constexpr size_t kMaxFrames = 32;
  static constexpr size_t kDefaultRingCapacity = 4096;

  static Profiler& instance() noexcept {
    static Profiler p;
    return p;
  }

  static void register_thread(ThreadRole) noexcept {}

  class ScopedRole {
   public:
    explicit ScopedRole(ThreadRole) noexcept {}
  };

  bool start(uint32_t) noexcept { return false; }
  void stop() noexcept {}
  [[nodiscard]] bool running() const noexcept { return false; }
  [[nodiscard]] uint32_t hz() const noexcept { return 0; }
  void set_ring_capacity(size_t) noexcept {}
  [[nodiscard]] uint64_t samples_total() const noexcept { return 0; }
  [[nodiscard]] uint64_t samples_for(ThreadRole) const noexcept { return 0; }
  [[nodiscard]] uint64_t dropped_total() const noexcept { return 0; }
  [[nodiscard]] std::string folded() { return {}; }
  [[nodiscard]] uint64_t ring_bytes() const noexcept { return 0; }
  void cpu_seconds(double* out) const noexcept {
    for (size_t i = 0; i < kThreadRoleCount; ++i) out[i] = 0.0;
  }
  [[nodiscard]] uint64_t thread_count() const noexcept { return 0; }

 private:
  Profiler() = default;
};

#endif  // SUBSUM_NO_TELEMETRY

}  // namespace subsum::obs
