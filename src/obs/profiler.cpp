#include "obs/profiler.h"

#include <cctype>
#include <charconv>

namespace subsum::obs {

std::string_view to_string(ThreadRole r) noexcept {
  switch (r) {
    case ThreadRole::kMain:
      return "main";
    case ThreadRole::kAccept:
      return "accept";
    case ThreadRole::kConn:
      return "conn";
    case ThreadRole::kWriter:
      return "writer";
    case ThreadRole::kWalk:
      return "walk";
    case ThreadRole::kFsync:
      return "fsync";
    case ThreadRole::kOther:
      return "other";
  }
  return "other";
}

std::vector<std::pair<std::string, uint64_t>> parse_folded(std::string_view text) {
  std::vector<std::pair<std::string, uint64_t>> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0 || sp + 1 >= line.size()) continue;
    uint64_t count = 0;
    const auto* first = line.data() + sp + 1;
    const auto [p, ec] = std::from_chars(first, line.data() + line.size(), count);
    if (ec != std::errc{} || p != line.data() + line.size()) continue;
    out.emplace_back(std::string(line.substr(0, sp)), count);
  }
  return out;
}

}  // namespace subsum::obs

#ifndef SUBSUM_NO_TELEMETRY

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

// Linux extensions for tid-directed timer signals; defined defensively for
// libcs that hide them.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace subsum::obs {

namespace {

constexpr size_t kMaxThreads = 512;

/// One registered thread. A slot is live while tid != 0; it is claimed and
/// released under g_mu, so the readers that iterate slots (arm/disarm,
/// cpu_seconds) always see live pthread handles.
struct ThreadRec {
  std::atomic<pid_t> tid{0};
  std::atomic<uint8_t> base_role{static_cast<uint8_t>(ThreadRole::kOther)};
  pthread_t pthread{};
  uintptr_t stack_lo = 0;  // 0/0 = unknown: leaf-only capture
  uintptr_t stack_hi = 0;
  bool timer_armed = false;  // guarded by g_mu
  timer_t timer{};
};

/// One captured sample, packed for the seqlock protocol: all fields are
/// relaxed atomics so a reader racing the handler is well-defined; the seq
/// validation around the reads discards torn values.
struct SampleSlot {
  std::atomic<uint64_t> seq{0};  // 2*ticket+1 while writing, 2*ticket+2 done
  std::atomic<uint8_t> role{0};
  std::atomic<uint8_t> nframes{0};
  std::atomic<uintptr_t> pc[Profiler::kMaxFrames] = {};
};

std::mutex g_mu;  // registry + lifecycle + drain; NEVER taken by the handler
ThreadRec g_threads[kMaxThreads];
std::atomic<bool> g_running{false};
std::atomic<uint32_t> g_hz{0};
std::unique_ptr<SampleSlot[]> g_ring;  // allocated before g_running flips on
size_t g_capacity = Profiler::kDefaultRingCapacity;  // guarded by g_mu pre-start
size_t g_requested_capacity = Profiler::kDefaultRingCapacity;
std::atomic<uint64_t> g_appended{0};
uint64_t g_drained = 0;  // reader cursor; guarded by g_mu
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_role_samples[kThreadRoleCount] = {};
double g_retired_cpu_sec[kThreadRoleCount] = {};  // guarded by g_mu
bool g_handler_installed = false;                 // guarded by g_mu

thread_local ThreadRec* t_rec = nullptr;
thread_local uint8_t t_role = static_cast<uint8_t>(ThreadRole::kOther);

pid_t sys_gettid() noexcept { return static_cast<pid_t>(::syscall(SYS_gettid)); }

double thread_cpu_seconds(pthread_t th) noexcept {
  clockid_t clk;
  if (pthread_getcpuclockid(th, &clk) != 0) return 0.0;
  timespec ts{};
  if (clock_gettime(clk, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Walks the frame-pointer chain from the interrupted context. Async-
/// signal-safe: bounded, stack-range-checked loads only. Uninstrumented
/// (no_sanitize) because the chain legitimately reads saved-rbp/ret slots
/// that the sanitizers did not see stored through this pointer.
#if defined(__clang__) || defined(__GNUC__)
__attribute__((no_sanitize("address", "thread", "undefined")))
#endif
unsigned
capture_backtrace(void* uctx, uintptr_t lo, uintptr_t hi,
                  uintptr_t pcs[Profiler::kMaxFrames]) noexcept {
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__linux__) && defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__linux__) && defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uctx;
  pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
#endif
  unsigned n = 0;
  if (pc != 0) pcs[n++] = pc;
  // Frame layout (x86-64 and aarch64 alike with frame pointers): [fp] =
  // caller's fp, [fp + word] = return address. The chain must stay inside
  // the thread's stack and move strictly upward, which bounds the loop and
  // keeps every load inside mapped memory.
  constexpr uintptr_t kWord = sizeof(uintptr_t);
  while (n < Profiler::kMaxFrames && fp >= lo && fp + 2 * kWord <= hi &&
         (fp & (kWord - 1)) == 0) {
    const uintptr_t next = *reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret = *reinterpret_cast<const uintptr_t*>(fp + kWord);
    if (ret < 0x1000) break;
    pcs[n++] = ret;
    if (next <= fp) break;
    fp = next;
  }
  return n;
}

void append_sample(uint8_t role, const uintptr_t* pcs, unsigned n) noexcept {
  SampleSlot* ring = g_ring.get();
  const size_t cap = g_capacity;
  if (ring == nullptr || cap == 0) return;
  const uint64_t ticket = g_appended.fetch_add(1, std::memory_order_relaxed);
  SampleSlot& s = ring[ticket % cap];
  s.seq.store(2 * ticket + 1, std::memory_order_release);
  s.role.store(role, std::memory_order_relaxed);
  s.nframes.store(static_cast<uint8_t>(n), std::memory_order_relaxed);
  for (unsigned i = 0; i < n; ++i) s.pc[i].store(pcs[i], std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);
  if (role < kThreadRoleCount) {
    g_role_samples[role].fetch_add(1, std::memory_order_relaxed);
  }
}

extern "C" void subsum_sigprof_handler(int, siginfo_t*, void* uctx) {
  const int saved_errno = errno;
  // Acquire pairs with the release store of g_running in start(): a
  // handler that observes running also observes the ring allocation.
  if (t_rec != nullptr && g_running.load(std::memory_order_acquire)) {
    uintptr_t pcs[Profiler::kMaxFrames];
    const unsigned n = capture_backtrace(uctx, t_rec->stack_lo, t_rec->stack_hi, pcs);
    if (n > 0) append_sample(t_role, pcs, n);
  }
  errno = saved_errno;
}

/// Arms a per-thread CPU-clock timer for `rec`. Caller holds g_mu and
/// g_hz is set. Failure (exotic kernels, clock refusal) leaves the thread
/// unsampled — never fatal.
void arm_timer_locked(ThreadRec& rec) noexcept {
  if (rec.timer_armed) return;
  clockid_t clk;
  if (pthread_getcpuclockid(rec.pthread, &clk) != 0) return;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof sev);
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
#if defined(sigev_notify_thread_id)
  sev.sigev_notify_thread_id = rec.tid.load(std::memory_order_relaxed);
#else
  sev._sigev_un._tid = rec.tid.load(std::memory_order_relaxed);
#endif
  timer_t t;
  if (timer_create(clk, &sev, &t) != 0) return;
  const uint32_t hz = g_hz.load(std::memory_order_relaxed);
  const long ns = 1'000'000'000L / static_cast<long>(hz);
  itimerspec its{};
  its.it_interval.tv_sec = ns / 1'000'000'000L;
  its.it_interval.tv_nsec = ns % 1'000'000'000L;
  its.it_value = its.it_interval;
  if (timer_settime(t, 0, &its, nullptr) != 0) {
    timer_delete(t);
    return;
  }
  rec.timer = t;
  rec.timer_armed = true;
}

void disarm_timer_locked(ThreadRec& rec) noexcept {
  if (!rec.timer_armed) return;
  timer_delete(rec.timer);
  rec.timer_armed = false;
}

void stack_bounds(uintptr_t* lo, uintptr_t* hi) noexcept {
  *lo = 0;
  *hi = 0;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* base = nullptr;
  size_t size = 0;
  if (pthread_attr_getstack(&attr, &base, &size) == 0 && base != nullptr && size > 0) {
    *lo = reinterpret_cast<uintptr_t>(base);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
#endif
}

/// Thread-exit hook: retires the thread's CPU total into its role's
/// accumulator and frees the slot (and timer) under g_mu.
struct ThreadGuard {
  bool registered = false;
  ~ThreadGuard() {
    if (!registered || t_rec == nullptr) return;
    std::lock_guard lk(g_mu);
    disarm_timer_locked(*t_rec);
    const double cpu = thread_cpu_seconds(t_rec->pthread);
    const uint8_t role = t_rec->base_role.load(std::memory_order_relaxed);
    if (role < kThreadRoleCount) g_retired_cpu_sec[role] += cpu;
    t_rec->tid.store(0, std::memory_order_relaxed);
    t_rec = nullptr;
  }
};
thread_local ThreadGuard t_guard;

// --- symbolization (off the signal path, under g_mu) -------------------------

std::unordered_map<uintptr_t, std::string>& sym_cache() {
  static std::unordered_map<uintptr_t, std::string> cache;
  return cache;
}

/// Folded-frame sanitization: flamegraph semantics reserve ';' (frame
/// separator) and the final ' ' (count separator).
std::string sanitize_frame(std::string s) {
  // Function name only: template/parameter noise bloats folded keys.
  if (const size_t paren = s.find('('); paren != std::string::npos) s.resize(paren);
  for (char& c : s) {
    if (c == ';' || std::isspace(static_cast<unsigned char>(c)) != 0) c = '_';
  }
  if (s.empty()) s = "?";
  return s;
}

std::string symbolize(uintptr_t pc, bool return_address) {
  // Return addresses point AFTER the call; back up one byte so the lookup
  // lands inside the calling function, not a successor.
  const uintptr_t addr = return_address && pc > 0 ? pc - 1 : pc;
  auto& cache = sym_cache();
  if (const auto it = cache.find(addr); it != cache.end()) return it->second;

  std::string name;
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(addr), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      name = sanitize_frame(status == 0 && dem != nullptr ? dem : info.dli_sname);
      std::free(dem);
    } else if (info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      char buf[256];
      std::snprintf(buf, sizeof buf, "%s+0x%zx", base != nullptr ? base + 1 : info.dli_fname,
                    static_cast<size_t>(addr - reinterpret_cast<uintptr_t>(info.dli_fbase)));
      name = sanitize_frame(buf);
    }
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%zx", static_cast<size_t>(addr));
    name = buf;
  }
  cache.emplace(addr, name);
  return name;
}

}  // namespace

Profiler& Profiler::instance() noexcept {
  static Profiler p;
  return p;
}

void Profiler::register_thread(ThreadRole role) noexcept {
  t_role = static_cast<uint8_t>(role);
  if (t_rec != nullptr) {  // idempotent: just update the roles
    t_rec->base_role.store(t_role, std::memory_order_relaxed);
    return;
  }
  std::lock_guard lk(g_mu);
  for (auto& rec : g_threads) {
    pid_t expected = 0;
    if (!rec.tid.compare_exchange_strong(expected, sys_gettid(),
                                         std::memory_order_relaxed)) {
      continue;
    }
    rec.base_role.store(t_role, std::memory_order_relaxed);
    rec.pthread = pthread_self();
    stack_bounds(&rec.stack_lo, &rec.stack_hi);
    rec.timer_armed = false;
    t_rec = &rec;
    t_guard.registered = true;
    if (g_running.load(std::memory_order_relaxed)) arm_timer_locked(rec);
    return;
  }
  // Registry full: the thread runs unprofiled (t_rec stays null).
}

Profiler::ScopedRole::ScopedRole(ThreadRole r) noexcept : prev_(t_role) {
  t_role = static_cast<uint8_t>(r);
}

Profiler::ScopedRole::~ScopedRole() { t_role = prev_; }

bool Profiler::start(uint32_t hz) noexcept {
  if (hz == 0) return false;
  std::lock_guard lk(g_mu);
  if (g_running.load(std::memory_order_relaxed)) return false;
  if (g_ring == nullptr || g_capacity != g_requested_capacity) {
    // Retire (never free) a replaced ring: a straggler SIGPROF delivered
    // between the previous stop() and this start() may still hold the old
    // pointer. Rings are resized rarely; the leak is bounded and deliberate.
    static std::vector<std::unique_ptr<SampleSlot[]>> graveyard;
    if (g_ring != nullptr) graveyard.push_back(std::move(g_ring));
    g_capacity = g_requested_capacity;
    g_ring = std::make_unique<SampleSlot[]>(g_capacity);
    g_appended.store(0, std::memory_order_relaxed);
    g_drained = 0;
  }
  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_sigaction = subsum_sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;
    g_handler_installed = true;
  }
  g_hz.store(hz, std::memory_order_relaxed);
  g_running.store(true, std::memory_order_release);
  for (auto& rec : g_threads) {
    if (rec.tid.load(std::memory_order_relaxed) != 0) arm_timer_locked(rec);
  }
  return true;
}

void Profiler::stop() noexcept {
  std::lock_guard lk(g_mu);
  if (!g_running.load(std::memory_order_relaxed)) return;
  g_running.store(false, std::memory_order_release);
  for (auto& rec : g_threads) {
    if (rec.tid.load(std::memory_order_relaxed) != 0) disarm_timer_locked(rec);
  }
  // The handler stays installed (it checks g_running); a straggler timer
  // signal in flight lands on a no-op.
}

bool Profiler::running() const noexcept { return g_running.load(std::memory_order_relaxed); }

uint32_t Profiler::hz() const noexcept {
  return running() ? g_hz.load(std::memory_order_relaxed) : 0;
}

void Profiler::set_ring_capacity(size_t samples) noexcept {
  if (samples == 0) return;
  std::lock_guard lk(g_mu);
  g_requested_capacity = samples;
}

uint64_t Profiler::samples_total() const noexcept {
  return g_appended.load(std::memory_order_relaxed);
}

uint64_t Profiler::samples_for(ThreadRole r) const noexcept {
  return g_role_samples[static_cast<size_t>(r)].load(std::memory_order_relaxed);
}

uint64_t Profiler::dropped_total() const noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

uint64_t Profiler::ring_bytes() const noexcept {
  std::lock_guard lk(g_mu);
  return g_ring != nullptr ? g_capacity * sizeof(SampleSlot) : 0;
}

uint64_t Profiler::thread_count() const noexcept {
  uint64_t n = 0;
  for (const auto& rec : g_threads) {
    if (rec.tid.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

void Profiler::cpu_seconds(double* out) const noexcept {
  std::lock_guard lk(g_mu);
  for (size_t i = 0; i < kThreadRoleCount; ++i) out[i] = g_retired_cpu_sec[i];
  // A live thread's CPU lands on the role it registered with; ScopedRole
  // excursions (walk, fsync on conn threads) are attributed by the SAMPLE
  // mix instead — duty cycle answers "which threads are busy", the
  // flamegraph answers "doing what".
  for (const auto& rec : g_threads) {
    if (rec.tid.load(std::memory_order_relaxed) == 0) continue;
    const uint8_t role = rec.base_role.load(std::memory_order_relaxed);
    if (role < kThreadRoleCount) out[role] += thread_cpu_seconds(rec.pthread);
  }
}

std::string Profiler::folded() {
  std::lock_guard lk(g_mu);
  if (g_ring == nullptr) return {};
  const uint64_t appended = g_appended.load(std::memory_order_acquire);
  uint64_t begin = g_drained;
  const uint64_t low = appended > g_capacity ? appended - g_capacity : 0;
  if (begin < low) {
    // The writer lapped the reader: those samples are gone.
    g_dropped.fetch_add(low - begin, std::memory_order_relaxed);
    begin = low;
  }
  std::map<std::string, uint64_t> agg;
  std::string key;
  for (uint64_t t = begin; t < appended; ++t) {
    SampleSlot& s = g_ring[t % g_capacity];
    if (s.seq.load(std::memory_order_acquire) != 2 * t + 2) {
      // Torn or already overwritten by a racing writer.
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const uint8_t role = s.role.load(std::memory_order_relaxed);
    unsigned n = s.nframes.load(std::memory_order_relaxed);
    if (n > kMaxFrames) n = kMaxFrames;
    uintptr_t pcs[kMaxFrames];
    for (unsigned i = 0; i < n; ++i) pcs[i] = s.pc[i].load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != 2 * t + 2) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    key.assign(to_string(static_cast<ThreadRole>(
        role < kThreadRoleCount ? role : static_cast<uint8_t>(ThreadRole::kOther))));
    // pcs[0] is the leaf; folded stacks list root-first.
    for (unsigned i = n; i-- > 0;) {
      key += ';';
      key += symbolize(pcs[i], /*return_address=*/i != 0);
    }
    ++agg[key];
  }
  g_drained = appended;
  std::string out;
  for (const auto& [stack, count] : agg) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace subsum::obs

#endif  // SUBSUM_NO_TELEMETRY
