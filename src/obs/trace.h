// Causal event tracing: a 64-bit trace id minted at publish and carried in
// the wire frame (PROTOCOL v3) and through the sim router, producing
// per-event span logs. Each broker keeps a fixed-capacity ring of spans;
// overwrite-oldest, so a live broker's memory cost is bounded and the
// most recent traffic is always inspectable (kTrace admin RPC,
// `tools/subsum_stats --trace`).
//
// A span is one phase of one event's life at one broker:
//   recv      the event arrived (kPublish or kEvent frame)
//   match     the merged summary was matched
//   forward   the BROCLI walk forwarded to `peer`
//   deliver   matched ids were delivered (to `peer`, or locally when
//             peer == broker)
//   retry     a peer RPC attempt failed and will be retried (peer = target)
//   redeliver a queued delivery was re-attempted from the redelivery queue
//
// Timestamps are microseconds from an arbitrary per-process origin
// (steady clock) in the TCP broker, and deterministic virtual time (the
// walk's step counter) in the simulator — which makes sim traces
// byte-for-byte reproducible and therefore testable.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace subsum::obs {

enum class Phase : uint8_t {
  kRecv = 0,
  kMatch = 1,
  kForward = 2,
  kDeliver = 3,
  kRetry = 4,
  kRedeliver = 5,
};

/// "recv", "match", ... (stable wire/JSONL names).
std::string_view to_string(Phase p) noexcept;

struct Span {
  static constexpr uint32_t kNoPeer = 0xffffffffu;

  uint64_t trace = 0;        // 0 = untraced (pre-v3 peer); never minted
  uint32_t broker = 0;       // broker that recorded the span
  Phase phase = Phase::kRecv;
  uint32_t peer = kNoPeer;   // forward/deliver/retry target; kNoPeer otherwise
  uint64_t t_us = 0;         // microseconds; virtual time in the simulator
  uint64_t bytes = 0;        // wire bytes of the frame (match spans: id count)

  bool operator==(const Span&) const = default;
};

/// Bounded, thread-safe span log: append overwrites the oldest once full.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096);

  void append(const Span& s);

  /// All retained spans, oldest first.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Retained spans of one trace, oldest first.
  [[nodiscard]] std::vector<Span> for_trace(uint64_t trace) const;

  /// Spans ever appended (including overwritten ones).
  [[nodiscard]] uint64_t appended() const;

  /// Spans currently retained (== min(appended since clear, capacity)).
  [[nodiscard]] uint64_t retained() const;

  /// Spans lost to overwrite-oldest since construction: appended() minus
  /// everything still retained. Exported as
  /// `subsum_trace_spans_dropped_total` so silent span loss is visible.
  [[nodiscard]] uint64_t dropped() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t capacity_;
  size_t next_ = 0;       // ring_[next_] is the oldest once wrapped
  uint64_t appended_ = 0;
  uint64_t dropped_ = 0;  // overwritten spans (not cleared ones)
};

/// One span per line:
/// {"trace":"0000000000000000","broker":0,"phase":"recv","t_us":0,"bytes":0}
/// with `,"peer":N` inserted before t_us when the span has a peer. The
/// field order is fixed, so equal span sequences give equal bytes — the
/// sim determinism tests compare this output directly.
std::string to_jsonl(std::span<const Span> spans);

/// Deterministic 64-bit mix (splitmix64 finalizer) of the publish site and
/// sequence — unique enough for ring-lifetime trace ids without any global
/// coordination. The simulator passes salt 0 so ids (and thus span logs)
/// are reproducible; TCP brokers salt with the wall clock.
uint64_t mint_trace_id(uint32_t broker, uint64_t seq, uint64_t salt) noexcept;

/// Microseconds since an arbitrary per-process origin (steady clock).
/// Compiled to a constant 0 under SUBSUM_NO_TELEMETRY so `now_us() - t0`
/// timing pairs vanish along with the observe() they feed.
#ifndef SUBSUM_NO_TELEMETRY
uint64_t now_us() noexcept;
#else
inline uint64_t now_us() noexcept { return 0; }
#endif

}  // namespace subsum::obs
