#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"
#include "util/crc32c.h"

namespace subsum::obs {

namespace {

constexpr char kMagic[8] = {'S', 'U', 'B', 'S', 'U', 'M', 'F', 'R'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderPayload = 32;  // version, broker, anchors, appended
constexpr size_t kRecordPayload = 40;

void put_le32(uint8_t* p, uint32_t v) noexcept {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void put_le64(uint8_t* p, uint64_t v) noexcept {
  put_le32(p, static_cast<uint32_t>(v));
  put_le32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t get_le32(const std::byte* p) noexcept {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t get_le64(const std::byte* p) noexcept {
  return static_cast<uint64_t>(get_le32(p)) |
         (static_cast<uint64_t>(get_le32(p + 4)) << 32);
}

/// Encodes one record into a 40-byte buffer (fixed LE layout).
void encode_record(const FrRecord& r, uint8_t* out) noexcept {
  put_le64(out, r.t_us);
  put_le64(out + 8, r.trace);
  put_le64(out + 16, r.detail);
  put_le32(out + 24, r.broker);
  put_le32(out + 28, r.a);
  put_le32(out + 32, r.b);
  out[36] = static_cast<uint8_t>(r.kind);
  out[37] = out[38] = out[39] = 0;
}

FrRecord decode_record(const std::byte* p) noexcept {
  FrRecord r;
  r.t_us = get_le64(p);
  r.trace = get_le64(p + 8);
  r.detail = get_le64(p + 16);
  r.broker = get_le32(p + 24);
  r.a = get_le32(p + 28);
  r.b = get_le32(p + 32);
  r.kind = static_cast<FrKind>(std::to_integer<uint8_t>(p[36]));
  return r;
}

/// Encodes the magic + CRC-framed header into a 48-byte buffer.
void encode_header(const FlightRecorder& fr, uint64_t wall_anchor,
                   uint64_t steady_anchor, uint8_t* out) noexcept {
  std::memcpy(out, kMagic, sizeof kMagic);
  uint8_t* payload = out + 12;  // after magic + crc
  put_le32(payload, kVersion);
  put_le32(payload + 4, fr.broker());
  put_le64(payload + 8, wall_anchor);
  put_le64(payload + 16, steady_anchor);
  put_le64(payload + 24, fr.appended());
  put_le32(out + 8, util::crc32c({reinterpret_cast<const std::byte*>(payload),
                                  kHeaderPayload}));
}

bool write_all(int fd, const uint8_t* p, size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

std::string_view breaker_state_name(uint64_t s) noexcept {
  switch (s) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half-open";
  }
  return "?";
}

}  // namespace

std::string_view to_string(FrKind k) noexcept {
  switch (k) {
    case FrKind::kStart: return "start";
    case FrKind::kRungChange: return "rung-change";
    case FrKind::kBreakerFlip: return "breaker-flip";
    case FrKind::kDropOldest: return "drop-oldest";
    case FrKind::kSlowConsumer: return "slow-consumer-disconnect";
    case FrKind::kLeaseExpired: return "lease-expired";
    case FrKind::kEpochBump: return "epoch-bump";
    case FrKind::kWalTruncateHeal: return "wal-truncate-heal";
    case FrKind::kShutdown: return "shutdown";
    case FrKind::kDump: return "dump";
    case FrKind::kFatalSignal: return "fatal-signal";
    case FrKind::kPeriodBegin: return "period-begin";
  }
  return "?";
}

FlightRecorder::FlightRecorder(uint32_t broker, size_t capacity, bool virtual_time)
    : broker_(broker),
      capacity_(capacity ? capacity : 1),
      virtual_time_(virtual_time),
      slots_(std::make_unique<Slot[]>(capacity ? capacity : 1)) {
  if (!virtual_time_) {
    wall_anchor_us_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    steady_anchor_us_ = now_us();
  }
  // Prime the CRC tables' magic-static so a fatal-signal dump never has to
  // initialize them from the handler.
  const std::byte prime[1] = {};
  (void)util::crc32c({prime, 1});
}

void FlightRecorder::record(FrKind k, uint32_t a, uint32_t b, uint64_t detail,
                            uint64_t trace) noexcept {
  record_at(virtual_time_ ? 0 : now_us(), k, a, b, detail, trace);
}

void FlightRecorder::record_at(uint64_t t_us, FrKind k, uint32_t a, uint32_t b,
                               uint64_t detail, uint64_t trace) noexcept {
#ifndef SUBSUM_NO_TELEMETRY
  const uint64_t ticket = appended_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket % capacity_];
  s.seq.store(2 * ticket + 1, std::memory_order_release);  // writing
  s.w0.store(t_us, std::memory_order_relaxed);
  s.w1.store(trace, std::memory_order_relaxed);
  s.w2.store(detail, std::memory_order_relaxed);
  s.w3.store(uint64_t{broker_} | (uint64_t{a} << 32), std::memory_order_relaxed);
  s.w4.store(uint64_t{b} | (uint64_t{static_cast<uint8_t>(k)} << 32),
             std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);  // done
#else
  (void)t_us; (void)k; (void)a; (void)b; (void)detail; (void)trace;
#endif
}

bool FlightRecorder::read_slot(uint64_t i, FrRecord& out) const noexcept {
  const Slot& s = slots_[i % capacity_];
  if (s.seq.load(std::memory_order_acquire) != 2 * i + 2) return false;
  const uint64_t w0 = s.w0.load(std::memory_order_acquire);
  const uint64_t w1 = s.w1.load(std::memory_order_acquire);
  const uint64_t w2 = s.w2.load(std::memory_order_acquire);
  const uint64_t w3 = s.w3.load(std::memory_order_acquire);
  const uint64_t w4 = s.w4.load(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_acquire) != 2 * i + 2) return false;  // torn
  out.t_us = w0;
  out.trace = w1;
  out.detail = w2;
  out.broker = static_cast<uint32_t>(w3);
  out.a = static_cast<uint32_t>(w3 >> 32);
  out.b = static_cast<uint32_t>(w4);
  out.kind = static_cast<FrKind>(static_cast<uint8_t>(w4 >> 32));
  return true;
}

std::vector<FrRecord> FlightRecorder::snapshot() const {
  std::vector<FrRecord> out;
  const uint64_t end = appended_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; ++i) {
    FrRecord r;
    if (read_slot(i, r)) out.push_back(r);
  }
  return out;
}

std::vector<std::byte> FlightRecorder::serialize() const {
  std::vector<std::byte> out;
  uint8_t hdr[8 + 4 + kHeaderPayload];
  encode_header(*this, wall_anchor_us_, steady_anchor_us_, hdr);
  out.insert(out.end(), reinterpret_cast<const std::byte*>(hdr),
             reinterpret_cast<const std::byte*>(hdr) + sizeof hdr);
  for (const FrRecord& r : snapshot()) {
    uint8_t frame[4 + kRecordPayload];
    encode_record(r, frame + 4);
    put_le32(frame, util::crc32c({reinterpret_cast<const std::byte*>(frame + 4),
                                  kRecordPayload}));
    out.insert(out.end(), reinterpret_cast<const std::byte*>(frame),
               reinterpret_cast<const std::byte*>(frame) + sizeof frame);
  }
  return out;
}

bool FlightRecorder::dump_to(const std::string& path) const noexcept {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const int rc = dump_to_fd(fd);
  const bool closed = ::close(fd) == 0;
  return rc == 0 && closed;
}

int FlightRecorder::dump_to_fd(int fd) const noexcept {
  uint8_t hdr[8 + 4 + kHeaderPayload];
  encode_header(*this, wall_anchor_us_, steady_anchor_us_, hdr);
  if (!write_all(fd, hdr, sizeof hdr)) return -1;
  const uint64_t end = appended_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (uint64_t i = begin; i < end; ++i) {
    FrRecord r;
    if (!read_slot(i, r)) continue;
    uint8_t frame[4 + kRecordPayload];
    encode_record(r, frame + 4);
    put_le32(frame, util::crc32c({reinterpret_cast<const std::byte*>(frame + 4),
                                  kRecordPayload}));
    if (!write_all(fd, frame, sizeof frame)) return -1;
  }
  return 0;
}

std::optional<FrDump> decode_dump(std::span<const std::byte> bytes) {
  if (bytes.size() < 8 + 4 + kHeaderPayload) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return std::nullopt;
  const uint32_t hdr_crc = get_le32(bytes.data() + 8);
  const std::byte* payload = bytes.data() + 12;
  if (util::crc32c({payload, kHeaderPayload}) != hdr_crc) return std::nullopt;

  FrDump d;
  d.version = get_le32(payload);
  d.broker = get_le32(payload + 4);
  d.wall_anchor_us = get_le64(payload + 8);
  d.steady_anchor_us = get_le64(payload + 16);
  d.appended = get_le64(payload + 24);

  size_t pos = 8 + 4 + kHeaderPayload;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 4 + kRecordPayload) {
      d.truncated = true;  // torn tail
      break;
    }
    const uint32_t crc = get_le32(bytes.data() + pos);
    const std::byte* rec = bytes.data() + pos + 4;
    if (util::crc32c({rec, kRecordPayload}) != crc) {
      d.truncated = true;  // corrupt: keep the intact prefix
      break;
    }
    d.records.push_back(decode_record(rec));
    pos += 4 + kRecordPayload;
  }
  return d;
}

std::string format_timeline(std::span<const FrDump> dumps) {
  struct Line {
    uint64_t t = 0;  // wall-anchored µs (raw when the dump has no anchor)
    const FrDump* dump = nullptr;
    const FrRecord* rec = nullptr;
  };
  std::vector<Line> lines;
  for (const FrDump& d : dumps) {
    for (const FrRecord& r : d.records) {
      Line l;
      l.t = d.wall_anchor_us == 0
                ? r.t_us
                : d.wall_anchor_us + (r.t_us - d.steady_anchor_us);
      l.dump = &d;
      l.rec = &r;
      lines.push_back(l);
    }
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& x, const Line& y) {
    return x.t < y.t;
  });
  const uint64_t base = lines.empty() ? 0 : lines.front().t;

  std::string out;
  char buf[192];
  for (const Line& l : lines) {
    const FrRecord& r = *l.rec;
    const uint64_t dt = l.t - base;
    int n = std::snprintf(buf, sizeof buf, "+%llu.%06llus broker %u %s",
                          static_cast<unsigned long long>(dt / 1000000),
                          static_cast<unsigned long long>(dt % 1000000), r.broker,
                          std::string(to_string(r.kind)).c_str());
    out.append(buf, static_cast<size_t>(n));
    switch (r.kind) {
      case FrKind::kStart:
        n = std::snprintf(buf, sizeof buf, " epoch=%llu",
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kRungChange:
        n = std::snprintf(buf, sizeof buf, " %u->%u usage=%lluB", r.a, r.b,
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kBreakerFlip:
        n = std::snprintf(buf, sizeof buf, " peer=%u %s->%s", r.a,
                          std::string(breaker_state_name(r.detail)).c_str(),
                          std::string(breaker_state_name(r.b)).c_str());
        break;
      case FrKind::kDropOldest:
        n = std::snprintf(buf, sizeof buf, " frames=%u bytes=%llu", r.a,
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kSlowConsumer:
        n = std::snprintf(buf, sizeof buf, " fd=%u queued=%lluB", r.a,
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kLeaseExpired:
        n = std::snprintf(buf, sizeof buf, " sub=%u owner=%u", r.a, r.b);
        break;
      case FrKind::kEpochBump:
        n = std::snprintf(buf, sizeof buf, " epoch=%llu",
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kWalTruncateHeal:
        n = std::snprintf(buf, sizeof buf, " kept=%lluB",
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kFatalSignal:
        n = std::snprintf(buf, sizeof buf, " sig=%u", r.a);
        break;
      case FrKind::kPeriodBegin:
        n = std::snprintf(buf, sizeof buf, " period=%llu",
                          static_cast<unsigned long long>(r.detail));
        break;
      case FrKind::kShutdown:
      case FrKind::kDump:
        n = 0;
        break;
    }
    if (n > 0) out.append(buf, static_cast<size_t>(n));
    if (r.trace != 0) {
      n = std::snprintf(buf, sizeof buf, " trace=%016llx",
                        static_cast<unsigned long long>(r.trace));
      out.append(buf, static_cast<size_t>(n));
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

// One recorder per process for the fatal-signal path; plain (non-atomic)
// stores are fine: install happens before any traffic, handlers only read.
FlightRecorder* g_fatal_fr = nullptr;
const char* g_fatal_path = nullptr;

void fatal_dump_handler(int sig) {
  if (g_fatal_fr != nullptr && g_fatal_path != nullptr) {
    g_fatal_fr->record(FrKind::kFatalSignal, static_cast<uint32_t>(sig));
    const int fd = ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      (void)g_fatal_fr->dump_to_fd(fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_fatal_dump(FlightRecorder* fr, const char* path) {
  g_fatal_fr = fr;
  g_fatal_path = path;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = fatal_dump_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(sig, &sa, nullptr);
  }
}

}  // namespace subsum::obs
