// Structured logging: leveled, rate-limited JSONL with trace-id
// correlation. One line per event, fixed leading fields:
//
//   {"ts_us":1722970000123456,"level":"warn","broker":3,
//    "component":"governor","msg":"rung change","trace":"00ab...",
//    "old":1,"new":3}
//
// ts_us is wall-clock microseconds (correlates with flight-recorder dump
// anchors); "trace" appears only for trace-correlated events and uses the
// same 16-hex-digit form as span JSONL, so a log line, a span chain, and
// an exemplar all name the same id.
//
// The default level is kOff — a broker is silent unless `subsum_broker
// --log-level` (or a test) turns logging on, preserving the pre-existing
// behavior of every tool and test. A token-window rate limit (per second,
// process-wide) bounds the cost of pathological event storms; suppressed
// lines are counted and surfaced in a summary line when the window rolls.
//
// Under -DSUBSUM_NO_TELEMETRY log() compiles to a no-op and enabled() to
// false, so call sites (and their argument construction, when guarded by
// enabled()) vanish.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string_view>

namespace subsum::obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// "debug", "info", "warn", "error", "off" (stable wire names).
std::string_view to_string(LogLevel l) noexcept;

/// Inverse of to_string(); unknown names parse to kOff.
LogLevel parse_log_level(std::string_view s) noexcept;

/// One structured key/value (integers only — counts, ids, bytes).
struct LogKv {
  std::string_view key;
  int64_t value = 0;
};

class Logger {
 public:
  Logger() = default;

  /// Reconfigures the sink. Call before the broker serves traffic; the
  /// sink must outlive the logger (stderr or a process-lifetime FILE*).
  void configure(LogLevel min_level, std::FILE* sink, uint32_t broker,
                 uint64_t max_lines_per_sec = 200) noexcept;

  /// Cheap level gate — use to skip argument construction entirely.
  [[nodiscard]] bool enabled(LogLevel l) const noexcept {
#ifndef SUBSUM_NO_TELEMETRY
    return static_cast<uint8_t>(l) >=
           min_level_.load(std::memory_order_relaxed);
#else
    (void)l;
    return false;
#endif
  }

  void log(LogLevel l, std::string_view component, std::string_view msg,
           uint64_t trace = 0, std::initializer_list<LogKv> kv = {});

  [[nodiscard]] uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint8_t> min_level_{static_cast<uint8_t>(LogLevel::kOff)};
  std::FILE* sink_ = stderr;
  uint32_t broker_ = 0;
  uint64_t max_per_sec_ = 200;
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};

  std::mutex mu_;                  // rate window + line write
  uint64_t window_start_us_ = 0;   // steady clock
  uint64_t window_count_ = 0;
  uint64_t window_suppressed_ = 0;
};

/// JSON string-escapes `s` (quotes, backslashes, control chars) into `out`.
void json_escape(std::string_view s, std::string& out);

}  // namespace subsum::obs
