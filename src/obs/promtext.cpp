#include "obs/promtext.h"

#include <cstdlib>

namespace subsum::obs {

namespace {

bool is_space(char c) noexcept { return c == ' ' || c == '\t'; }

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && (is_space(s.back()) || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

/// Parses `k="v",...}` starting after the '{'; advances `pos` past the '}'.
/// Returns false on malformed input.
bool parse_labels(std::string_view line, size_t& pos,
                  std::vector<std::pair<std::string, std::string>>& out) {
  while (pos < line.size()) {
    while (pos < line.size() && (is_space(line[pos]) || line[pos] == ',')) ++pos;
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      return true;
    }
    const size_t eq = line.find('=', pos);
    if (eq == std::string_view::npos) return false;
    std::string key(trim(line.substr(pos, eq - pos)));
    size_t q = eq + 1;
    while (q < line.size() && is_space(line[q])) ++q;
    if (q >= line.size() || line[q] != '"') return false;
    ++q;  // past the opening quote
    std::string raw;
    while (q < line.size() && line[q] != '"') {
      if (line[q] == '\\' && q + 1 < line.size()) {
        raw += line[q];
        raw += line[q + 1];
        q += 2;
      } else {
        raw += line[q++];
      }
    }
    if (q >= line.size()) return false;  // unterminated value
    ++q;                                 // past the closing quote
    out.emplace_back(std::move(key), unescape_label_value(raw));
    pos = q;
  }
  return false;  // no closing '}'
}

}  // namespace

std::string unescape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\' || i + 1 >= v.size()) {
      out += v[i];
      continue;
    }
    switch (v[++i]) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      default:  // unknown escape: keep verbatim
        out += '\\';
        out += v[i];
    }
  }
  return out;
}

const std::string* PromSample::label(std::string_view key) const noexcept {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::vector<PromSample> parse_prometheus_text(std::string_view text) {
  std::vector<PromSample> out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? std::string_view::npos : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    PromSample s;
    size_t pos = 0;
    while (pos < line.size() && !is_space(line[pos]) && line[pos] != '{') ++pos;
    if (pos == 0) continue;
    s.name.assign(line.substr(0, pos));
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      if (!parse_labels(line, pos, s.labels)) continue;
    }
    const std::string_view rest = trim(line.substr(pos));
    if (rest.empty()) continue;
    // `value [timestamp] [# {labels} exemplar-value]` — strtod stops at
    // the first space by itself, so the suffixes never corrupt the value.
    const std::string value_str(rest);
    char* end = nullptr;
    s.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str()) continue;  // not a number
    // Optional exemplar: `# {k="v",...} value`. Best-effort — anything
    // malformed past the '#' leaves the sample exemplar-free.
    const size_t hash = rest.find('#', static_cast<size_t>(end - value_str.c_str()));
    if (hash != std::string_view::npos) {
      size_t p = hash + 1;
      while (p < rest.size() && is_space(rest[p])) ++p;
      if (p < rest.size() && rest[p] == '{') {
        ++p;
        std::vector<std::pair<std::string, std::string>> exlabels;
        if (parse_labels(rest, p, exlabels)) {
          for (const auto& [k, v] : exlabels) {
            if (k == "trace_id") s.exemplar_trace = v;
          }
          const std::string exval(trim(rest.substr(p)));
          char* exend = nullptr;
          const double ev = std::strtod(exval.c_str(), &exend);
          if (exend != exval.c_str() && !s.exemplar_trace.empty()) {
            s.exemplar_value = ev;
          } else {
            s.exemplar_trace.clear();  // no value or no trace_id: drop it
          }
        }
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace subsum::obs
