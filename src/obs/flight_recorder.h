// Black-box flight recorder: a bounded, lock-light ring of structured
// state-transition records — the events an operator needs to reconstruct
// the minutes before an incident (governor rung changes, breaker flips,
// drop-oldest sheds, slow-consumer disconnects, lease expiries, epoch
// bumps, WAL truncate-heals) without having had logging enabled.
//
// Design constraints, in order:
//   1. Appends are wait-free (one relaxed fetch_add + a per-slot seqlock)
//      so recording a rung change costs nanoseconds and can sit on the
//      governor's accounting path.
//   2. The dump path must work from a fatal-signal handler: dump_to_fd()
//      touches no heap, no locks, and no stdio — only write(2). The
//      constructor primes the CRC tables so the handler never initializes
//      them.
//   3. Dumps survive torn writes: the file is a CRC-framed record stream
//      (same style as the WAL), so a reader keeps every intact prefix
//      record and flags truncation instead of failing.
//
// The file format (little-endian):
//   magic   "SUBSUMFR" (8 bytes)
//   header  u32 crc32c(payload) | payload:
//             u32 version (=1) | u32 broker | u64 wall_anchor_us |
//             u64 steady_anchor_us | u64 appended
//   records u32 crc32c(payload) | payload: one 40-byte FrRecord each
// wall/steady anchors pin the recorder's monotone timestamps to the wall
// clock at construction, so `tools/subsum_blackbox` can merge dumps from
// several brokers into one incident timeline. The simulator constructs
// recorders in virtual time (anchors 0) and stamps records explicitly,
// which keeps two identical runs byte-identical.
//
// Under -DSUBSUM_NO_TELEMETRY record()/record_at() compile to no-ops;
// serialization still emits a valid (empty) dump so kDump stays
// wire-compatible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace subsum::obs {

enum class FrKind : uint8_t {
  kStart = 0,             // recorder constructed; detail = epoch
  kRungChange = 1,        // a = old rung, b = new rung, detail = usage bytes
  kBreakerFlip = 2,       // a = peer, b = new state, detail = old state
  kDropOldest = 3,        // a = frames dropped, detail = bytes dropped
  kSlowConsumer = 4,      // a = fd, detail = queued bytes at disconnect
  kLeaseExpired = 5,      // a = subscription local id, b = owner broker
  kEpochBump = 6,         // detail = new epoch
  kWalTruncateHeal = 7,   // detail = valid bytes kept
  kShutdown = 8,          // clean stop()
  kDump = 9,              // on-demand kDump RPC served
  kFatalSignal = 10,      // a = signal number
  kPeriodBegin = 11,      // detail = propagation period number
};

/// "start", "rung-change", ... (stable timeline names).
std::string_view to_string(FrKind k) noexcept;

/// One state transition. POD, fixed 40-byte wire layout.
struct FrRecord {
  uint64_t t_us = 0;    // obs::now_us() origin (or virtual time in the sim)
  uint64_t trace = 0;   // correlated trace id, 0 when none
  uint64_t detail = 0;  // kind-specific payload (see FrKind)
  uint32_t broker = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  FrKind kind = FrKind::kStart;

  bool operator==(const FrRecord&) const = default;
};

/// A decoded dump file.
struct FrDump {
  uint32_t version = 0;
  uint32_t broker = 0;
  uint64_t wall_anchor_us = 0;    // 0 in virtual-time (sim) dumps
  uint64_t steady_anchor_us = 0;
  uint64_t appended = 0;          // records ever appended (>= records.size())
  std::vector<FrRecord> records;  // oldest first
  bool truncated = false;         // torn tail / bad CRC encountered
};

class FlightRecorder {
 public:
  /// `virtual_time` pins both clock anchors to 0 and makes record() stamp
  /// t_us = 0 — the simulator stamps explicitly via record_at() so its
  /// dumps are byte-identical across runs.
  explicit FlightRecorder(uint32_t broker, size_t capacity = 1024,
                          bool virtual_time = false);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FrKind k, uint32_t a = 0, uint32_t b = 0, uint64_t detail = 0,
              uint64_t trace = 0) noexcept;
  /// record() with an explicit timestamp (virtual time in the simulator).
  void record_at(uint64_t t_us, FrKind k, uint32_t a = 0, uint32_t b = 0,
                 uint64_t detail = 0, uint64_t trace = 0) noexcept;

  [[nodiscard]] uint64_t appended() const noexcept {
    return appended_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] uint32_t broker() const noexcept { return broker_; }

  /// Retained records, oldest first. Records a concurrent writer is
  /// mid-overwrite on are skipped, never torn.
  [[nodiscard]] std::vector<FrRecord> snapshot() const;

  /// The dump file bytes (header + CRC-framed records).
  [[nodiscard]] std::vector<std::byte> serialize() const;

  /// Writes serialize() to `path` (O_TRUNC). Returns false on any I/O error.
  bool dump_to(const std::string& path) const noexcept;

  /// Async-signal-safe dump: stack buffers and write(2) only. Returns 0 on
  /// success, -1 on a short/failed write.
  int dump_to_fd(int fd) const noexcept;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 2*ticket+1 while writing, 2*ticket+2 done
    // The record, packed into atomic words: w0 = t_us, w1 = trace,
    // w2 = detail, w3 = broker | a<<32, w4 = b | kind<<32. Atomics keep a
    // snapshot racing a writer well-defined; the seq validation around the
    // reads discards the torn value.
    std::atomic<uint64_t> w0{0}, w1{0}, w2{0}, w3{0}, w4{0};
  };

  /// Seqlock-validated read of slot `i % capacity`; false when the slot is
  /// being (re)written concurrently or holds a different ticket.
  bool read_slot(uint64_t i, FrRecord& out) const noexcept;

  uint32_t broker_;
  size_t capacity_;
  bool virtual_time_;
  uint64_t wall_anchor_us_ = 0;
  uint64_t steady_anchor_us_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> appended_{0};
};

/// Parses a dump file; nullopt only when the magic/header is unreadable.
/// A torn or corrupt record tail yields the intact prefix with
/// truncated = true.
std::optional<FrDump> decode_dump(std::span<const std::byte> bytes);

/// Human-readable merged incident timeline across brokers: every record of
/// every dump, sorted by wall-anchored time (raw time when anchors are 0),
/// one line each, e.g.
///   +12.041s broker 3 rung-change 1->3 usage=7340032B
///   +12.977s broker 3 breaker-flip peer=1 closed->open
std::string format_timeline(std::span<const FrDump> dumps);

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that record a
/// fatal-signal event, dump `fr` to `path` (which must outlive the
/// process), and re-raise the default disposition. One recorder per
/// process; a second call replaces the first.
void install_fatal_dump(FlightRecorder* fr, const char* path);

}  // namespace subsum::obs
