// Event workload generator. Draws values from the same ValuePools as the
// subscription generator so published events actually hit subscribed
// ranges/strings at a controllable rate.
#pragma once

#include "model/event.h"
#include "workload/sub_gen.h"

namespace subsum::workload {

/// Builds an event that provably satisfies `sub` (one value per constrained
/// attribute, derived from the constraints). Returns nullopt when the
/// subscription is unsatisfiable or needs a value this constructor cannot
/// synthesize (e.g. an open integer interval with no integral point).
/// Drives workloads that must hit an exact target match set (paper fig 10).
std::optional<model::Event> matching_event(const model::Schema& schema,
                                           const model::Subscription& sub);

struct EventGenParams {
  size_t arith_attrs = 2;
  size_t string_attrs = 3;
  /// Probability an arithmetic value falls inside a canonical sub-range /
  /// a string value comes from the pooled values (a potential match).
  double hit_rate = 0.7;
  /// Skew of pooled string-value popularity: 0 = uniform; > 0 draws pooled
  /// values Zipf(s)-distributed by pool rank, mimicking the hot-symbol
  /// skew of real feeds (a few tickers dominate the event stream).
  double zipf_exponent = 0.0;
};

class EventGenerator {
 public:
  /// `pools` must outlive the generator.
  EventGenerator(const model::Schema& schema, const ValuePools& pools, EventGenParams params,
                 uint64_t seed);

  [[nodiscard]] model::Event next();

 private:
  const model::Schema* schema_;
  const ValuePools* pools_;
  EventGenParams params_;
  util::Rng rng_;
  std::vector<model::AttrId> arith_ids_;
  std::vector<model::AttrId> string_ids_;
  std::optional<util::Zipf> zipf_;  // shared across attrs; pools are equal-sized
  uint64_t miss_counter_ = 0;
};

}  // namespace subsum::workload
