// The evaluation schema: nt = 10 attributes in the spirit of fig 2's stock
// event (exchange/symbol/when/price/volume/high/low), padded to the paper's
// nt = 10 with open/sector/currency. Six arithmetic + four string
// attributes, so the paper's "average subscription" (nt/2 = 5 attributes,
// 40 % arithmetic / 60 % string => 2 arithmetic + 3 string) is expressible
// with attribute variety.
#pragma once

#include "model/schema.h"

namespace subsum::workload {

/// 0 exchange:s  1 symbol:s  2 sector:s  3 currency:s  4 when:i
/// 5 price:f     6 volume:i  7 high:f    8 low:f       9 open:f
model::Schema stock_schema();

}  // namespace subsum::workload
