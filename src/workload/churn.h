// Subscription-churn workload (soft-state summaries, PROTOCOL v4): a
// Poisson subscribe/unsubscribe process per propagation period, with
// optional flash-crowd periods where both rates spike by a multiplier.
// Everything is derived from one seed — the subscription contents, the
// per-period counts, the flash-crowd schedule AND the unsubscribe victim
// choices — so a churn run replays identically across the sim, the net
// cluster and the bench harness.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/sub_gen.h"

namespace subsum::workload {

struct ChurnParams {
  /// Mean NEW subscriptions per propagation period (Poisson).
  double subscribe_rate = 100.0;
  /// Mean unsubscribes per period (Poisson); capped by the live count.
  double unsubscribe_rate = 100.0;
  /// Probability a period is a flash crowd: both rates are multiplied by
  /// `flash_crowd_mult` for that period only.
  double flash_crowd_prob = 0.0;
  double flash_crowd_mult = 10.0;
};

/// One period's worth of churn, drawn from ChurnStream::next_period().
struct ChurnPeriod {
  std::vector<model::Subscription> subscribes;
  /// How many live subscriptions to remove this period; pick each victim
  /// with ChurnStream::pick_victim_index over the caller's live list.
  size_t unsubscribes = 0;
  bool flash_crowd = false;
};

class ChurnStream {
 public:
  ChurnStream(const model::Schema& schema, SubGenParams gen, ChurnParams churn, uint64_t seed);

  /// Draws the next period: Poisson counts (flash-crowd adjusted) and the
  /// generated subscriptions to add.
  ChurnPeriod next_period();

  /// Deterministic victim choice: a uniform index into the caller's
  /// current live list. Call once per unsubscribe, removing the victim
  /// before the next call, and distributed replays agree victim by victim.
  size_t pick_victim_index(size_t live_count);

  [[nodiscard]] SubscriptionGenerator& generator() noexcept { return gen_; }

 private:
  SubscriptionGenerator gen_;
  ChurnParams churn_;
  util::Rng rng_;  // period counts + victim picks; independent of gen_'s
};

}  // namespace subsum::workload
