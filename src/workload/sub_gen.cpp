#include "workload/sub_gen.h"

#include <algorithm>
#include <stdexcept>

namespace subsum::workload {

using model::AttrId;
using model::Constraint;
using model::Op;

ValuePools ValuePools::make(const model::Schema& schema, size_t nsr_ranges, size_t pool_size) {
  ValuePools p;
  p.arith.resize(schema.attr_count());
  p.strings.resize(schema.attr_count());
  p.prefixes.resize(schema.attr_count());
  for (AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      // Disjoint canonical sub-ranges: attribute a owns the band
      // [a*1000, a*1000 + 100*nsr).
      for (size_t j = 0; j < nsr_ranges; ++j) {
        const double lo = static_cast<double>(a) * 1000.0 + 100.0 * static_cast<double>(j);
        p.arith[a].ranges.emplace_back(lo, lo + 50.0);
      }
    } else {
      const std::string& name = schema.spec(a).name;
      for (size_t j = 0; j < pool_size; ++j) {
        p.strings[a].push_back(name + "-" + std::to_string(j));
      }
      // A handful of canonical prefixes, each covering many pooled values.
      for (size_t j = 0; j < std::max<size_t>(1, pool_size / 8); ++j) {
        p.prefixes[a].push_back(name + "-" + std::to_string(j));
      }
    }
  }
  return p;
}

SubscriptionGenerator::SubscriptionGenerator(const model::Schema& schema, SubGenParams params,
                                             uint64_t seed)
    : schema_(&schema),
      params_(params),
      rng_(seed),
      pools_(ValuePools::make(schema, params.nsr_ranges, params.pool_size)) {
  for (AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      arith_ids_.push_back(a);
    } else {
      string_ids_.push_back(a);
    }
  }
  if (params_.arith_attrs > arith_ids_.size() || params_.string_attrs > string_ids_.size()) {
    throw std::invalid_argument("schema has too few attributes for the requested mix");
  }
}

namespace {

/// k distinct elements sampled from ids (partial Fisher-Yates).
std::vector<AttrId> sample(const std::vector<AttrId>& ids, size_t k, subsum::util::Rng& rng) {
  std::vector<AttrId> pool = ids;
  for (size_t i = 0; i < k; ++i) {
    std::swap(pool[i], pool[i + rng.below(pool.size() - i)]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

void SubscriptionGenerator::add_arith_constraints(std::vector<Constraint>& out, AttrId attr) {
  const auto& ranges = pools_.arith[attr].ranges;
  if (rng_.chance(params_.subsumption)) {
    // Subsumed: the canonical range itself (the paper's model), or a
    // random window inside it when range_tightness > 0.
    const auto& [lo, hi] = ranges[rng_.below(ranges.size())];
    double a = lo;
    double b = hi;
    if (params_.range_tightness > 0) {
      const double width = (hi - lo) * (1.0 - params_.range_tightness);
      a = rng_.range_f64(lo, hi - width);
      b = a + width;
    }
    if (schema_->type_of(attr) == model::AttrType::kInt) {
      out.push_back({attr, Op::kGe, static_cast<int64_t>(a)});
      out.push_back({attr, Op::kLe, static_cast<int64_t>(b)});
    } else {
      out.push_back({attr, Op::kGe, a});
      out.push_back({attr, Op::kLe, b});
    }
  } else {
    // Fresh: an equality on a value no canonical range contains. Values
    // land in the attribute's band above the ranges, stepping by 0.25 so
    // repeats are rare but possible.
    const double v = static_cast<double>(attr) * 1000.0 + 900.0 +
                     static_cast<double>(fresh_counter_++ % 257) * 0.25;
    if (schema_->type_of(attr) == model::AttrType::kInt) {
      out.push_back({attr, Op::kEq, static_cast<int64_t>(v * 4)});
    } else {
      out.push_back({attr, Op::kEq, v});
    }
  }
}

void SubscriptionGenerator::add_string_constraint(std::vector<Constraint>& out, AttrId attr) {
  if (rng_.chance(params_.subsumption)) {
    if (rng_.chance(params_.prefix_fraction)) {
      const auto& pre = pools_.prefixes[attr];
      out.push_back({attr, Op::kPrefix, pre[rng_.below(pre.size())]});
    } else {
      const auto& pool = pools_.strings[attr];
      out.push_back({attr, Op::kEq, pool[rng_.below(pool.size())]});
    }
  } else {
    out.push_back({attr, Op::kEq,
                   schema_->spec(attr).name + "-x" + std::to_string(fresh_counter_++) + "-" +
                       rng_.ascii_lower(4)});
  }
}

model::Subscription SubscriptionGenerator::next() {
  std::vector<Constraint> cs;
  for (AttrId a : sample(arith_ids_, params_.arith_attrs, rng_)) {
    add_arith_constraints(cs, a);
  }
  for (AttrId a : sample(string_ids_, params_.string_attrs, rng_)) {
    add_string_constraint(cs, a);
  }
  return model::Subscription(*schema_, std::move(cs));
}

std::vector<size_t> churn_permutation(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  util::Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  return order;
}

}  // namespace subsum::workload
