#include "workload/stock_schema.h"

namespace subsum::workload {

model::Schema stock_schema() {
  using model::AttrType;
  return model::Schema({
      {"exchange", AttrType::kString},
      {"symbol", AttrType::kString},
      {"sector", AttrType::kString},
      {"currency", AttrType::kString},
      {"when", AttrType::kInt},
      {"price", AttrType::kFloat},
      {"volume", AttrType::kInt},
      {"high", AttrType::kFloat},
      {"low", AttrType::kFloat},
      {"open", AttrType::kFloat},
  });
}

}  // namespace subsum::workload
