#include "workload/event_gen.h"

#include <algorithm>
#include <stdexcept>

#include <cmath>

#include "core/interval.h"
#include "util/strings.h"

namespace subsum::workload {

using model::AttrId;

namespace {

/// A concrete point inside a non-empty interval set, preferring integral
/// values when `integral` is set; nullopt when no integral point exists.
std::optional<double> point_in(const core::IntervalSet& region, bool integral) {
  for (const auto& iv : region.intervals()) {
    const bool lo_inf = std::isinf(iv.lo.v);
    const bool hi_inf = std::isinf(iv.hi.v);
    double candidate;
    if (!integral) {
      if (lo_inf && hi_inf) {
        candidate = 0.0;
      } else if (lo_inf) {
        candidate = iv.hi.v - 1.0;
      } else if (hi_inf) {
        candidate = iv.lo.v + 1.0;
      } else if (iv.lo.v == iv.hi.v) {
        candidate = iv.lo.v;
      } else {
        candidate = (iv.lo.v + iv.hi.v) / 2.0;
      }
    } else {
      if (lo_inf && hi_inf) {
        candidate = 0.0;
      } else if (lo_inf) {
        candidate = std::floor(iv.hi.v) ;
        if (!iv.contains(candidate)) candidate -= 1.0;
      } else if (hi_inf) {
        candidate = std::ceil(iv.lo.v);
        if (!iv.contains(candidate)) candidate += 1.0;
      } else {
        candidate = std::ceil(iv.lo.v);
        if (!iv.contains(candidate)) candidate += 1.0;
      }
    }
    if (iv.contains(candidate)) return candidate;
  }
  return std::nullopt;
}

/// A string satisfying the conjunction of patterns, or nullopt.
std::optional<std::string> string_satisfying(const std::vector<model::Constraint>& cs) {
  // Prefer an equality operand if one exists.
  std::string candidate;
  bool have_eq = false;
  for (const auto& c : cs) {
    if (c.op == model::Op::kEq) {
      candidate = c.operand.as_string();
      have_eq = true;
      break;
    }
  }
  const auto satisfies_all = [&](const std::string& v) {
    return std::all_of(cs.begin(), cs.end(), [&](const model::Constraint& c) {
      return c.matches(model::Value(v));
    });
  };
  if (have_eq) {
    if (satisfies_all(candidate)) return candidate;
    return std::nullopt;  // the fixed equality value contradicts another op
  }
  // prefix + contains... [+ padding to dodge ≠ collisions] + suffix.
  std::string prefix, suffix, middle;
  for (const auto& c : cs) {
    switch (c.op) {
      case model::Op::kPrefix:
        if (c.operand.as_string().size() > prefix.size()) prefix = c.operand.as_string();
        break;
      case model::Op::kSuffix:
        if (c.operand.as_string().size() > suffix.size()) suffix = c.operand.as_string();
        break;
      case model::Op::kContains:
        middle += c.operand.as_string();
        break;
      default:
        break;  // ≠ handled by the padding retries
    }
  }
  std::string pad;
  for (int attempt = 0; attempt < 4; ++attempt) {
    candidate = prefix + middle + pad + suffix;
    if (satisfies_all(candidate)) return candidate;
    pad += "~";
  }
  return std::nullopt;
}

}  // namespace

std::optional<model::Event> matching_event(const model::Schema& schema,
                                           const model::Subscription& sub) {
  std::vector<model::EventAttr> attrs;
  for (AttrId a = 0; a < schema.attr_count(); ++a) {
    if (!(sub.mask() & model::attr_bit(a))) continue;
    const auto cs = sub.constraints_on(a);
    if (is_arithmetic(schema.type_of(a))) {
      core::IntervalSet region = core::IntervalSet::all();
      for (const auto& c : cs) {
        region = region.intersect(
            core::IntervalSet::from_constraint(c.op, c.operand.as_number()));
      }
      const bool integral = schema.type_of(a) == model::AttrType::kInt;
      const auto v = point_in(region, integral);
      if (!v) return std::nullopt;
      if (integral) {
        attrs.push_back({a, static_cast<int64_t>(*v)});
      } else {
        attrs.push_back({a, *v});
      }
    } else {
      const auto v = string_satisfying(cs);
      if (!v) return std::nullopt;
      attrs.push_back({a, *v});
    }
  }
  model::Event e(schema, std::move(attrs));
  if (!sub.matches(e)) return std::nullopt;  // defensive: never emit a liar
  return e;
}

EventGenerator::EventGenerator(const model::Schema& schema, const ValuePools& pools,
                               EventGenParams params, uint64_t seed)
    : schema_(&schema), pools_(&pools), params_(params), rng_(seed) {
  for (AttrId a = 0; a < schema.attr_count(); ++a) {
    if (is_arithmetic(schema.type_of(a))) {
      arith_ids_.push_back(a);
    } else {
      string_ids_.push_back(a);
    }
  }
  if (params_.arith_attrs > arith_ids_.size() || params_.string_attrs > string_ids_.size()) {
    throw std::invalid_argument("schema has too few attributes for the requested mix");
  }
  if (params_.zipf_exponent > 0 && !string_ids_.empty()) {
    const size_t pool = pools.strings[string_ids_.front()].size();
    if (pool > 0) zipf_.emplace(pool, params_.zipf_exponent);
  }
}

model::Event EventGenerator::next() {
  std::vector<model::EventAttr> attrs;

  auto pick = [&](const std::vector<AttrId>& ids, size_t k) {
    std::vector<AttrId> pool = ids;
    for (size_t i = 0; i < k; ++i) {
      std::swap(pool[i], pool[i + rng_.below(pool.size() - i)]);
    }
    pool.resize(k);
    return pool;
  };

  for (AttrId a : pick(arith_ids_, params_.arith_attrs)) {
    double v;
    if (rng_.chance(params_.hit_rate) && !pools_->arith[a].ranges.empty()) {
      const auto& [lo, hi] = pools_->arith[a].ranges[rng_.below(pools_->arith[a].ranges.size())];
      v = rng_.range_f64(lo, hi);
    } else {
      // A value in the attribute's band but outside the canonical ranges.
      v = static_cast<double>(a) * 1000.0 + 700.0 +
          static_cast<double>(miss_counter_++ % 97);
    }
    if (schema_->type_of(a) == model::AttrType::kInt) {
      attrs.push_back({a, static_cast<int64_t>(v)});
    } else {
      attrs.push_back({a, v});
    }
  }
  for (AttrId a : pick(string_ids_, params_.string_attrs)) {
    if (rng_.chance(params_.hit_rate) && !pools_->strings[a].empty()) {
      const auto& pool = pools_->strings[a];
      const size_t rank = zipf_ && zipf_->size() <= pool.size() ? zipf_->sample(rng_)
                                                                : rng_.below(pool.size());
      attrs.push_back({a, pool[rank]});
    } else {
      attrs.push_back({a, "miss-" + rng_.ascii_lower(6)});
    }
  }
  return model::Event(*schema_, std::move(attrs));
}

}  // namespace subsum::workload
