#include "workload/churn.h"

namespace subsum::workload {

ChurnStream::ChurnStream(const model::Schema& schema, SubGenParams gen, ChurnParams churn,
                         uint64_t seed)
    : gen_(schema, gen, seed), churn_(churn), rng_(seed ^ 0xC0FFEE5EED5ULL) {}

ChurnPeriod ChurnStream::next_period() {
  ChurnPeriod p;
  p.flash_crowd = rng_.chance(churn_.flash_crowd_prob);
  const double mult = p.flash_crowd ? churn_.flash_crowd_mult : 1.0;
  const uint64_t subs = rng_.poisson(churn_.subscribe_rate * mult);
  p.unsubscribes = static_cast<size_t>(rng_.poisson(churn_.unsubscribe_rate * mult));
  p.subscribes.reserve(subs);
  for (uint64_t i = 0; i < subs; ++i) p.subscribes.push_back(gen_.next());
  return p;
}

size_t ChurnStream::pick_victim_index(size_t live_count) {
  return live_count == 0 ? 0 : static_cast<size_t>(rng_.below(live_count));
}

}  // namespace subsum::workload
