// Subscription workload generator with the paper's subsumption knob
// (§5.2): with probability `subsumption` a generated constraint is VALUE-
// SUBSUMED — arithmetic constraints fall inside one of the attribute's nsr
// canonical sub-ranges and string constraints reuse pooled values/patterns
// already covered by an existing summary row — otherwise the constraint
// introduces a fresh value ("represented as different values, specified
// with equality operators outside the ranges").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/subscription.h"
#include "util/rng.h"

namespace subsum::workload {

/// Shared value pools coordinating subscription and event generation.
struct ValuePools {
  struct ArithPool {
    /// nsr canonical disjoint [lo, hi] ranges (the paper's nsr = 2).
    std::vector<std::pair<double, double>> ranges;
  };
  /// Indexed by attribute id; entries for string attributes are unused.
  std::vector<ArithPool> arith;
  /// Pooled string values per attribute id; arithmetic entries unused.
  std::vector<std::vector<std::string>> strings;
  /// Pooled string prefixes (canonical SACS patterns).
  std::vector<std::vector<std::string>> prefixes;

  static ValuePools make(const model::Schema& schema, size_t nsr_ranges, size_t pool_size);
};

struct SubGenParams {
  double subsumption = 0.1;  // probability a constraint reuses covered values
  size_t arith_attrs = 2;    // arithmetic attributes per subscription
  size_t string_attrs = 3;   // string attributes per subscription
  size_t nsr_ranges = 2;     // canonical sub-ranges per arithmetic attribute
  size_t pool_size = 64;     // pooled string values per attribute
  /// Fraction of subsumed string constraints that use a prefix pattern from
  /// the pool instead of a pooled equality value.
  double prefix_fraction = 0.3;
  /// How much narrower than the canonical sub-range a subsumed arithmetic
  /// constraint is. 0 (default, the paper's model) reuses the canonical
  /// range verbatim, so AACS rows stay at nsr per attribute and only id
  /// lists grow; > 0 carves a random window of width
  /// (1 - range_tightness) * |range|, exercising AACS splitting
  /// (AacsMode::kExact) or row absorption (AacsMode::kCoarse).
  double range_tightness = 0.0;
};

class SubscriptionGenerator {
 public:
  SubscriptionGenerator(const model::Schema& schema, SubGenParams params, uint64_t seed);

  /// One random subscription per the parameters.
  model::Subscription next();

  [[nodiscard]] const ValuePools& pools() const noexcept { return pools_; }
  [[nodiscard]] const model::Schema& schema() const noexcept { return *schema_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

 private:
  void add_arith_constraints(std::vector<model::Constraint>& out, model::AttrId attr);
  void add_string_constraint(std::vector<model::Constraint>& out, model::AttrId attr);

  const model::Schema* schema_;
  SubGenParams params_;
  util::Rng rng_;
  ValuePools pools_;
  std::vector<model::AttrId> arith_ids_;
  std::vector<model::AttrId> string_ids_;
  uint64_t fresh_counter_ = 0;
};

/// Deterministic Fisher-Yates permutation of {0, .., n-1}: the order in
/// which previously issued subscriptions are unsubscribed (and possibly
/// re-subscribed) by churn workloads. Same (n, seed) gives the same order
/// on every platform, so distributed churn runs stay reproducible.
std::vector<size_t> churn_permutation(size_t n, uint64_t seed);

}  // namespace subsum::workload
