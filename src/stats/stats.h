// Tiny statistics and table-printing helpers used by bench/ to emit the
// paper's rows and series.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace subsum::stats {

/// Thread-safe named event counters. Reading a counter that was never
/// incremented yields 0 — callers need not pre-register names.
///
/// Two speeds: inc(name) takes the lock for a transparent (no temporary
/// string) lookup; a pre-registered Handle skips both the lock and the
/// lookup — one relaxed atomic add — which is what per-event hot loops
/// should use.
class Counters {
 public:
  /// Stable handle to one named counter (valid for the Counters' lifetime).
  class Handle {
   public:
    void inc(uint64_t by = 1) noexcept { v_.fetch_add(by, std::memory_order_relaxed); }
    [[nodiscard]] uint64_t value() const noexcept {
      return v_.load(std::memory_order_relaxed);
    }

   private:
    friend class Counters;
    std::atomic<uint64_t> v_{0};
  };

  /// Get-or-register; repeated calls with the same name return the same
  /// handle.
  Handle* handle(std::string_view name);

  void inc(std::string_view name, uint64_t by = 1);
  [[nodiscard]] uint64_t value(std::string_view name) const;
  [[nodiscard]] std::map<std::string, uint64_t> snapshot() const;
  /// "name=value" lines, sorted by name; for logs and test failures.
  [[nodiscard]] std::string to_string() const;

 private:
  // std::less<> makes find() transparent: a string_view probe never
  // constructs a std::string. Nodes are stable, so handles stay valid.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Handle>, std::less<>> counts_;
};

/// Online accumulator: count / mean / min / max / stddev. Uses Welford's
/// recurrence, so the variance stays accurate for series whose mean is
/// large relative to their spread (the naive sum-of-squares form
/// catastrophically cancels there — e.g. latencies near 1e9 ns).
class Series {
 public:
  void add(double x) noexcept;

  [[nodiscard]] size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0; }
  /// Population standard deviation (divides by n, as before the Welford
  /// rewrite).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;  // sum of squared deviations from the running mean
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-width text table: add a header once, then rows; print aligns
/// columns. Values are formatted with %.4g unless added as strings.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles.
  Table& rowf(const std::vector<double>& cells);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// %.4g formatting shared with Table::rowf.
std::string fmt(double v);

}  // namespace subsum::stats
