// Tiny statistics and table-printing helpers used by bench/ to emit the
// paper's rows and series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace subsum::stats {

/// Thread-safe named event counters. Reading a counter that was never
/// incremented yields 0 — callers need not pre-register names.
class Counters {
 public:
  void inc(const std::string& name, uint64_t by = 1);
  [[nodiscard]] uint64_t value(const std::string& name) const;
  [[nodiscard]] std::map<std::string, uint64_t> snapshot() const;
  /// "name=value" lines, sorted by name; for logs and test failures.
  [[nodiscard]] std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counts_;
};

/// Online accumulator: count / mean / min / max / stddev.
class Series {
 public:
  void add(double x) noexcept;

  [[nodiscard]] size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0; }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0;
  double sumsq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-width text table: add a header once, then rows; print aligns
/// columns. Values are formatted with %.4g unless added as strings.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles.
  Table& rowf(const std::vector<double>& cells);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// %.4g formatting shared with Table::rowf.
std::string fmt(double v);

}  // namespace subsum::stats
