#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace subsum::stats {

Counters::Handle* Counters::handle(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = counts_.find(name);
  if (it != counts_.end()) return it->second.get();
  return counts_.emplace(std::string(name), std::make_unique<Handle>()).first->second.get();
}

void Counters::inc(std::string_view name, uint64_t by) {
  std::lock_guard lk(mu_);
  const auto it = counts_.find(name);  // transparent: no temporary string
  if (it != counts_.end()) {
    it->second->inc(by);
    return;
  }
  counts_.emplace(std::string(name), std::make_unique<Handle>()).first->second->inc(by);
}

uint64_t Counters::value(std::string_view name) const {
  std::lock_guard lk(mu_);
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second->value();
}

std::map<std::string, uint64_t> Counters::snapshot() const {
  std::lock_guard lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, h] : counts_) out.emplace(name, h->value());
  return out;
}

std::string Counters::to_string() const {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot()) os << name << "=" << v << "\n";
  return os.str();
}

void Series::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  // Welford: accumulate squared deviations from the running mean instead
  // of raw squares, which cancel catastrophically when |mean| >> stddev.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Series::stddev() const noexcept {
  if (n_ < 2) return 0;
  const double var = m2_ / static_cast<double>(n_);
  return var > 0 ? std::sqrt(var) : 0;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::rowf(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(fmt(c));
  return row(std::move(out));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << c;
      if (i + 1 < widths.size()) os << std::string(widths[i] - c.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(widths.size());
  for (size_t w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace subsum::stats
