#include "sim/bus.h"

namespace subsum::sim {

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kSummary:
      return "summary";
    case MsgType::kSubForward:
      return "sub-forward";
    case MsgType::kEventForward:
      return "event-forward";
    case MsgType::kEventDelivery:
      return "event-delivery";
  }
  return "?";
}

size_t Accounting::total_messages() const noexcept {
  size_t n = 0;
  for (const auto& c : cells_) n += c.messages;
  return n;
}

size_t Accounting::total_bytes() const noexcept {
  size_t n = 0;
  for (const auto& c : cells_) n += c.bytes;
  return n;
}

std::string Accounting::to_string() const {
  std::string out;
  for (size_t i = 0; i < kMsgTypeCount; ++i) {
    const auto t = static_cast<MsgType>(i);
    out += std::string(sim::to_string(t)) + ": " + std::to_string(messages(t)) + " msgs, " +
           std::to_string(bytes(t)) + " bytes\n";
  }
  return out;
}

}  // namespace subsum::sim
