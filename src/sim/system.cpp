#include "sim/system.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/delta.h"
#include "siena/covering.h"

namespace subsum::sim {

using model::SubId;
using overlay::BrokerId;

size_t event_wire_bytes(const model::Event& e) {
  size_t n = 1;  // attribute count
  for (const auto& a : e.attrs()) {
    n += 1;  // attribute id
    if (a.value.type() == model::AttrType::kString) {
      n += 1 + a.value.as_string().size();
    } else {
      n += 8;
    }
  }
  return n;
}

SimSystem::SimSystem(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      wire_{model::SubIdCodec(static_cast<uint32_t>(cfg_.graph.size()),
                              cfg_.max_subs_per_broker, cfg_.schema.attr_count()),
            cfg_.numeric_width},
      trace_ring_(cfg_.trace_capacity),
      walk_metrics_(metrics_),
      probe_(metrics_, core::SampleConfig{cfg_.quality_sample_shift}) {
  const size_t n = cfg_.graph.size();
  if (n == 0) throw std::invalid_argument("system needs at least one broker");
  home_.resize(n);
  next_local_.assign(n, 0);
  delta_.assign(n, core::BrokerSummary(cfg_.schema, cfg_.policy, cfg_.arith_mode));
  state_.held.assign(n, core::BrokerSummary(cfg_.schema, cfg_.policy, cfg_.arith_mode));
  state_.merged_brokers.resize(n);
  for (BrokerId b = 0; b < n; ++b) state_.merged_brokers[b] = {b};
}

void SimSystem::dissolve(BrokerId broker, const model::Subscription& sub, SubId id) {
  delta_[broker].add(sub, id);
  state_.held[broker].add(sub, id);  // local knowledge is immediate
}

SubId SimSystem::subscribe(BrokerId broker, model::Subscription sub) {
  if (broker >= broker_count()) throw std::invalid_argument("broker id out of range");
  if (next_local_[broker] >= cfg_.max_subs_per_broker) {
    throw std::runtime_error("broker exceeded max outstanding subscriptions (c2 width)");
  }
  const SubId id{broker, next_local_[broker]++, sub.mask()};

  bool covered = false;
  if (cfg_.combine_subsumption) {
    // Covered by an already-propagated root of this broker? Then skip the
    // summaries entirely; the root's deliveries carry the event here.
    for (const auto& os : home_[broker].subs()) {
      if (!covered_by_.contains(os.id)) continue;  // only roots cover
      if (siena::covers(os.sub, sub, cfg_.schema)) {
        covered_by_[os.id].push_back(id);
        covered = true;
        break;
      }
    }
    if (!covered) covered_by_.emplace(id, std::vector<SubId>{});
  }
  if (!covered) dissolve(broker, sub, id);
  home_[broker].add({id, std::move(sub)});
  return id;
}

SubId SimSystem::subscribe(BrokerId broker, model::Subscription sub, uint32_t lease_periods) {
  const SubId id = subscribe(broker, std::move(sub));
  if (lease_periods > 0) leases_[id] = Lease{lease_periods, lease_periods};
  return id;
}

bool SimSystem::renew_lease(SubId id) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  it->second.remaining = it->second.ttl;
  return true;
}

void SimSystem::unsubscribe(SubId id) {
  leases_.erase(id);
  // Promote subscriptions this root was covering before it disappears.
  if (const auto it = covered_by_.find(id); it != covered_by_.end()) {
    const std::vector<SubId> orphans = std::move(it->second);
    covered_by_.erase(it);
    for (const SubId& orphan : orphans) {
      for (const auto& os : home_[orphan.broker].subs()) {
        if (os.id == orphan) {
          covered_by_.emplace(orphan, std::vector<SubId>{});
          dissolve(orphan.broker, os.sub, orphan);
          break;
        }
      }
    }
  } else if (cfg_.combine_subsumption) {
    // A covered subscription: detach it from its root's list.
    for (auto& [root, ids] : covered_by_) {
      std::erase(ids, id);
    }
  }
  home_.at(id.broker).remove(id);
  state_.held[id.broker].remove(id);
  delta_[id.broker].remove(id);
  pending_removals_.push_back(id);
}

routing::PropagationResult SimSystem::run_propagation_period() {
  // Virtual-time black box: one second of virtual time per period keeps
  // flight-recorder dumps byte-identical across identical runs.
  const uint64_t vt_us = ++period_seq_ * 1'000'000;
  flight_.record_at(vt_us, obs::FrKind::kPeriodBegin, 0, 0, period_seq_);
  // Soft state first: every period costs each lease one tick; expiry is an
  // unsubscribe in all but name, so the removal rides this same period's
  // maintenance piggyback.
  std::vector<SubId> lease_expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (--it->second.remaining == 0) {
      lease_expired.push_back(it->first);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  for (const SubId& id : lease_expired) {
    flight_.record_at(vt_us, obs::FrKind::kLeaseExpired, id.local, id.broker);
    unsubscribe(id);
  }
  if (!lease_expired.empty()) {
    metrics_.counter("subsum_lease_expired_total")->inc(lease_expired.size());
  }
  // Maintenance: apply pending removals to every broker's held state (they
  // ride along the period's summary messages; bytes charged below).
  for (auto& held : state_.held) {
    for (const SubId& id : pending_removals_) held.remove(id);
  }
  const size_t removal_bytes = pending_removals_.size() * wire_.codec.encoded_size();
  pending_removals_.clear();

  auto period = routing::propagate(cfg_.graph, delta_, wire_, cfg_.propagation);
  for (const auto& send : period.sends) {
    acct_.record(MsgType::kSummary, send.bytes + removal_bytes);
  }
  // Fold the period's results into the steady state. Merging is idempotent,
  // so re-merging a broker's own delta (already in held) is harmless.
  for (BrokerId b = 0; b < broker_count(); ++b) {
    state_.held[b].merge(period.held[b]);
    std::vector<BrokerId> merged;
    std::set_union(state_.merged_brokers[b].begin(), state_.merged_brokers[b].end(),
                   period.merged_brokers[b].begin(), period.merged_brokers[b].end(),
                   std::back_inserter(merged));
    state_.merged_brokers[b] = std::move(merged);
  }
  delta_.assign(broker_count(), core::BrokerSummary(cfg_.schema, cfg_.policy, cfg_.arith_mode));
  // Summary-quality exports, refreshed while the merged images are fresh:
  // wire-vs-model drift and per-attribute row occupancy, per broker.
  for (BrokerId b = 0; b < broker_count(); ++b) {
    const std::string label = std::to_string(b);
    core::export_model_drift(metrics_, state_.held[b], wire_, {}, label);
    core::export_row_occupancy(metrics_, state_.held[b], label);
    core::export_shard_metrics(metrics_, state_.held[b], label);
  }
  return period;
}

SimSystem::PublishOutcome SimSystem::publish(BrokerId origin, const model::Event& event) {
  if (origin >= broker_count()) throw std::invalid_argument("origin broker out of range");
  const uint64_t trace_id =
      cfg_.trace ? obs::mint_trace_id(origin, publish_seq_++, /*salt=*/0) : 0;
  PublishOutcome out = publish_one(origin, event, acct_, nullptr, trace_id);
  for (const obs::Span& s : out.route.spans) trace_ring_.append(s);
  return out;
}

std::vector<SimSystem::PublishOutcome> SimSystem::publish_batch(
    BrokerId origin, std::span<const model::Event> events, util::ThreadPool& pool) {
  if (origin >= broker_count()) throw std::invalid_argument("origin broker out of range");
  std::vector<PublishOutcome> out(events.size());
  if (events.empty()) return out;

  // Trace ids are minted up front, in event order, so the id stream (and
  // therefore each event's spans) is independent of the sharding.
  std::vector<uint64_t> traces(events.size(), 0);
  if (cfg_.trace) {
    for (auto& t : traces) t = obs::mint_trace_id(origin, publish_seq_++, /*salt=*/0);
  }

  const size_t shards = std::min(pool.concurrency(), events.size());
  const size_t chunk = (events.size() + shards - 1) / shards;
  std::vector<Accounting> deltas(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(begin + chunk, events.size());
    if (begin >= end) break;
    pool.submit([this, s, begin, end, origin, events, &out, &deltas, &traces] {
      core::MatchScratch scratch;
      for (size_t i = begin; i < end; ++i) {
        out[i] = publish_one(origin, events[i], deltas[s], &scratch, traces[i]);
      }
    });
  }
  pool.wait();
  // Barrier: fold the per-shard ledgers in shard (= event) order. The sums
  // are commutative integer additions, so totals are bit-identical to the
  // sequential loop's. Spans fold into the ring in event order too, so the
  // ring's contents match the sequential publish() loop exactly.
  for (const Accounting& d : deltas) acct_.merge(d);
  if (cfg_.trace) {
    for (const PublishOutcome& o : out) {
      for (const obs::Span& s : o.route.spans) trace_ring_.append(s);
    }
  }
  return out;
}

std::vector<SimSystem::PublishOutcome> SimSystem::publish_batch(
    BrokerId origin, std::span<const model::Event> events) {
  if (!publish_pool_) {
    publish_pool_ = std::make_unique<util::ThreadPool>(util::ThreadPool::hardware_threads());
  }
  return publish_batch(origin, events, *publish_pool_);
}

SimSystem::PublishOutcome SimSystem::publish_one(BrokerId origin, const model::Event& event,
                                                 Accounting& acct, core::MatchScratch* scratch,
                                                 uint64_t trace_id) const {
  PublishOutcome out;
  if (trace_id) {
    routing::RouterOptions ropts = cfg_.router;
    ropts.trace_id = trace_id;
    out.route = routing::route_event(cfg_.graph, state_, origin, event, ropts, scratch);
  } else {
    out.route = routing::route_event(cfg_.graph, state_, origin, event, cfg_.router, scratch);
  }

  const size_t ebytes = event_wire_bytes(event);
  for (size_t i = 0; i + 1 < out.route.visited.size(); ++i) {
    // Forwarded event carries BROCLI (one byte per broker as a bitmap).
    acct.record(MsgType::kEventForward, ebytes + (broker_count() + 7) / 8);
  }

  for (const auto& d : out.route.deliveries) {
    out.candidates.insert(out.candidates.end(), d.ids.begin(), d.ids.end());
    if (d.owner != d.examined_at) {
      acct.record(MsgType::kEventDelivery,
                  ebytes + d.ids.size() * wire_.codec.encoded_size());
    }
    // Exact re-filtering at the owner: SACS summarization may have produced
    // false positives; the home table is authoritative.
    if (cfg_.combine_subsumption) {
      // The event reached this broker because a propagated root matched;
      // fan out to every local subscription it satisfies, including the
      // covered ones that never entered the summaries.
      for (const auto& os : home_[d.owner].subs()) {
        if (os.sub.matches(event)) out.delivered.push_back(os.id);
      }
    } else {
      for (const SubId& id : d.ids) {
        for (const auto& os : home_[d.owner].subs()) {
          if (os.id == id && os.sub.matches(event)) {
            out.delivered.push_back(id);
            break;
          }
        }
      }
    }
  }
  std::sort(out.candidates.begin(), out.candidates.end());
  std::sort(out.delivered.begin(), out.delivered.end());

  // Observatory probes: walk-efficiency counters on every publish, plus the
  // shadow-sampled quality probe. `delivered` IS the exact oracle result
  // (home-table re-filter), so the sampled FP count is candidates−delivered;
  // the sampled events additionally get a match_into-vs-match_reference
  // differential run per visited broker (expected always equal). Counter
  // mutation is relaxed-atomic, so the const publish path and concurrent
  // publish_batch shards record safely; totals are commutative and thus
  // identical for every sharding.
  walk_metrics_.fold(out.route);
  if (!cfg_.combine_subsumption && probe_.should_sample(event)) {
    bool diverged = false;
    for (const BrokerId b : out.route.visited) {
      if (core::match(state_.held[b], event) !=
          core::match_reference(state_.held[b], event)) {
        diverged = true;
        break;
      }
    }
    probe_.record(out.candidates.size(), out.delivered.size(), diverged);
  }
  return out;
}

size_t SimSystem::summary_storage_bytes() const {
  size_t n = 0;
  for (const auto& held : state_.held) n += core::wire_size(held, wire_);
  return n;
}

uint64_t SimSystem::held_digest(BrokerId b) const {
  return core::summary_digest(state_.held.at(b));
}

}  // namespace subsum::sim
