// SimSystem: the full summary-centric pub/sub system, in process.
//
// It wires together everything the paper describes: per-broker summaries
// (core), the degree-iteration propagation (routing, Algorithm 2), the
// BROCLI event walk (routing, Algorithm 3), and exact re-filtering at each
// subscription's home broker. Subscriptions become visible to the rest of
// the network at the next propagation period (the paper's σ batching);
// the home broker always matches its own subscriptions immediately.
//
// This class is the recommended public entry point for in-process use and
// is what the examples and most integration tests drive. For real sockets,
// see net/cluster.h, which speaks the same protocol over TCP.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/matcher.h"
#include "core/quality.h"
#include "core/serialize.h"
#include "model/event.h"
#include "model/subscription.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overlay/graph.h"
#include "routing/event_router.h"
#include "routing/propagation.h"
#include "sim/bus.h"
#include "util/thread_pool.h"

namespace subsum::sim {

/// Approximate wire size of an event (1-byte attr tag + value bytes per
/// attribute), used to account event-forward bandwidth.
size_t event_wire_bytes(const model::Event& e);

struct SystemConfig {
  model::Schema schema;
  overlay::Graph graph;
  uint64_t max_subs_per_broker = uint64_t{1} << 20;  // sizes the id codec's c2
  core::GeneralizePolicy policy = core::GeneralizePolicy::kSafe;
  core::AacsMode arith_mode = core::AacsMode::kExact;  // kCoarse mirrors the paper
  uint8_t numeric_width = 8;  // wire width for AACS values (4 mirrors the paper)
  routing::RouterOptions router;
  routing::PropagationOptions propagation;
  /// The paper's §6 "combining summarization and subsumption": a new
  /// subscription covered by an already-propagated subscription of the same
  /// broker is NOT dissolved into the summaries (saving rows, ids and
  /// propagation bytes). Events reaching the broker are matched against the
  /// full home table, so covered subscriptions still receive exactly what
  /// they should: cov ⊆ root implies every event matching a covered
  /// subscription also matches its propagated coverer and therefore reaches
  /// the broker. Unsubscribing a coverer promotes its covered
  /// subscriptions into the summaries.
  bool combine_subsumption = false;
  /// Record every publish walk as spans in the system's trace ring. Trace
  /// ids are minted deterministically (obs::mint_trace_id, salt 0) and
  /// timestamps are virtual, so two identical runs produce byte-identical
  /// span logs — including through publish_batch, whose spans are folded
  /// into the ring in event order at the barrier.
  bool trace = false;
  size_t trace_capacity = 4096;
  /// Shadow-sampling fraction for the summary-quality probe: 1 in
  /// 2^quality_sample_shift events (by deterministic content hash) get the
  /// exact oracle re-run next to the summary match, feeding
  /// subsum_summary_false_positive_ids_total / subsum_summary_precision in
  /// metrics(). The sampled SET is identical across runs and shardings.
  /// Skipped under combine_subsumption (delivery semantics differ there).
  uint32_t quality_sample_shift = 6;
};

class SimSystem {
 public:
  explicit SimSystem(SystemConfig cfg);

  [[nodiscard]] const model::Schema& schema() const noexcept { return cfg_.schema; }
  [[nodiscard]] const overlay::Graph& graph() const noexcept { return cfg_.graph; }
  [[nodiscard]] size_t broker_count() const noexcept { return cfg_.graph.size(); }

  /// Registers a subscription at `broker`; returns its system-wide id.
  /// Local matching is immediate; remote brokers learn about it at the next
  /// run_propagation_period().
  model::SubId subscribe(overlay::BrokerId broker, model::Subscription sub);

  /// subscribe() with a soft-state lease (mirrors the net layer's v4
  /// semantics): unless renewed within `lease_periods` propagation
  /// periods, the subscription is expired — exactly like unsubscribe() —
  /// at the start of a period, counted in subsum_lease_expired_total.
  /// 0 = permanent.
  model::SubId subscribe(overlay::BrokerId broker, model::Subscription sub,
                         uint32_t lease_periods);

  /// Resets a leased subscription's window to its full TTL. Returns false
  /// when the id has no live lease (permanent, expired, or unknown).
  bool renew_lease(model::SubId id);

  /// Removes a subscription. Remote summary copies are cleaned up at the
  /// next propagation period (the paper leaves maintenance scheduling open;
  /// see DESIGN.md).
  void unsubscribe(model::SubId id);

  /// Runs one propagation period over the subscriptions added since the
  /// previous period (the paper's σ batch), merging the results into each
  /// broker's steady-state summary, and applies pending removals globally.
  /// Returns the period's propagation trace.
  routing::PropagationResult run_propagation_period();

  struct PublishOutcome {
    /// Exact matches, confirmed by the owners' home subscription tables.
    std::vector<model::SubId> delivered;
    /// Summary-level matches before home-broker re-filtering (may contain
    /// SACS false positives; always a superset of `delivered`).
    std::vector<model::SubId> candidates;
    routing::RouteResult route;
  };

  /// Publishes an event at `origin` and routes it per Algorithm 3.
  PublishOutcome publish(overlay::BrokerId origin, const model::Event& event);

  /// Publishes a batch of independent events at `origin`, sharding the
  /// BROCLI walks and candidate matching across `pool`'s workers (one
  /// MatchScratch per shard). Events do not mutate broker state, only the
  /// accounting ledger; each shard records into a private Accounting delta
  /// and the deltas are merged at the barrier, so per-event outcomes AND
  /// the ledger totals are identical to running the sequential publish()
  /// loop — for every pool size, including the inline (0/1-thread) pool.
  std::vector<PublishOutcome> publish_batch(overlay::BrokerId origin,
                                            std::span<const model::Event> events,
                                            util::ThreadPool& pool);

  /// publish_batch() on an internally-owned pool sized
  /// ThreadPool::hardware_threads() (created on first use).
  std::vector<PublishOutcome> publish_batch(overlay::BrokerId origin,
                                            std::span<const model::Event> events);

  [[nodiscard]] const Accounting& accounting() const noexcept { return acct_; }
  Accounting& accounting() noexcept { return acct_; }

  /// Post-propagation routing state (held summaries + Merged_Brokers).
  [[nodiscard]] const routing::PropagationResult& state() const noexcept { return state_; }

  /// The home subscription table of one broker.
  [[nodiscard]] const core::NaiveMatcher& home_subs(overlay::BrokerId b) const {
    return home_.at(b);
  }

  /// Total bytes of summary structures held across all brokers (fig 11's
  /// storage metric for our approach).
  [[nodiscard]] size_t summary_storage_bytes() const;

  /// Order-independent content digest of broker b's held summary
  /// (core/delta.h) — the same convergence witness the net layer exposes.
  [[nodiscard]] uint64_t held_digest(overlay::BrokerId b) const;

  [[nodiscard]] const core::WireConfig& wire() const noexcept { return wire_; }

  /// Span log of recent publishes (empty unless SystemConfig::trace).
  [[nodiscard]] const obs::TraceRing& trace_ring() const noexcept { return trace_ring_; }

  /// Virtual-time flight recorder: period boundaries and lease expiries,
  /// stamped with deterministic virtual timestamps (period * 1s), so two
  /// identical runs produce byte-identical serialize() output — the sim's
  /// reproducibility witness for the black-box format.
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const noexcept {
    return flight_;
  }

  /// The system's metrics registry: walk-efficiency counters
  /// (subsum_walk_*), the shadow-sampled quality probe (subsum_quality_*,
  /// subsum_summary_false_positive_ids_total, subsum_summary_precision)
  /// and per-broker summary gauges/histograms labeled {broker="N"}
  /// (model drift, row occupancy — refreshed each propagation period).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// The shadow-sampling quality probe (for tests: config + precision).
  [[nodiscard]] const core::QualityProbe& quality_probe() const noexcept { return probe_; }

 private:
  /// Registers `id` in the summaries (delta + local held).
  void dissolve(overlay::BrokerId broker, const model::Subscription& sub, model::SubId id);

  /// The publish pipeline for one event: const on broker state, records
  /// into the given ledger (the member ledger for publish(), a per-shard
  /// delta for publish_batch()).
  PublishOutcome publish_one(overlay::BrokerId origin, const model::Event& event,
                             Accounting& acct, core::MatchScratch* scratch,
                             uint64_t trace_id) const;

  SystemConfig cfg_;
  core::WireConfig wire_;
  Accounting acct_;

  struct Lease {
    uint32_t ttl = 0;
    uint32_t remaining = 0;
  };

  std::vector<core::NaiveMatcher> home_;          // exact tables per broker
  std::vector<core::BrokerSummary> delta_;        // this period's new subs
  std::vector<model::SubId> pending_removals_;
  std::map<model::SubId, Lease> leases_;          // soft-state subscriptions
  std::vector<uint32_t> next_local_;              // per-broker c2 allocator
  routing::PropagationResult state_;              // cumulative held summaries
  /// combine_subsumption bookkeeping: propagated root -> covered local subs.
  std::map<model::SubId, std::vector<model::SubId>> covered_by_;
  std::unique_ptr<util::ThreadPool> publish_pool_;  // lazily built default pool
  obs::TraceRing trace_ring_;   // publish spans, event order (cfg_.trace)
  obs::FlightRecorder flight_{0, 1024, /*virtual_time=*/true};
  uint64_t publish_seq_ = 0;    // deterministic trace-id stream
  uint64_t period_seq_ = 0;     // virtual clock for flight_ stamps
  obs::MetricsRegistry metrics_;        // declared before the handle holders below
  routing::WalkMetrics walk_metrics_;   // BROCLI walk-efficiency counters
  core::QualityProbe probe_;            // shadow-sampled FP probe
};

}  // namespace subsum::sim
