// Message accounting for the deterministic in-process simulation. Every
// broker-to-broker message is recorded with a class and a byte size; the
// benches read the ledger to produce the paper's bandwidth/hop numbers.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace subsum::sim {

enum class MsgType : uint8_t {
  kSummary = 0,        // propagation-phase summary messages (Algorithm 2)
  kSubForward = 1,     // per-subscription forwards (baselines)
  kEventForward = 2,   // event forwarding along the BROCLI walk
  kEventDelivery = 3,  // event + matched-id notifications to owner brokers
};
constexpr size_t kMsgTypeCount = 4;

const char* to_string(MsgType t) noexcept;

class Accounting {
 public:
  void record(MsgType t, size_t bytes) noexcept {
    auto& c = cells_[static_cast<size_t>(t)];
    c.messages += 1;
    c.bytes += bytes;
  }

  [[nodiscard]] size_t messages(MsgType t) const noexcept {
    return cells_[static_cast<size_t>(t)].messages;
  }
  [[nodiscard]] size_t bytes(MsgType t) const noexcept {
    return cells_[static_cast<size_t>(t)].bytes;
  }
  [[nodiscard]] size_t total_messages() const noexcept;
  [[nodiscard]] size_t total_bytes() const noexcept;

  /// Folds another ledger into this one. Message/byte sums are plain
  /// integer additions, so merging per-thread deltas (in any order) yields
  /// totals identical to sequential recording — the determinism guarantee
  /// SimSystem::publish_batch relies on.
  void merge(const Accounting& other) noexcept {
    for (size_t i = 0; i < kMsgTypeCount; ++i) {
      cells_[i].messages += other.cells_[i].messages;
      cells_[i].bytes += other.cells_[i].bytes;
    }
  }

  void reset() noexcept { cells_ = {}; }

  [[nodiscard]] std::string to_string() const;

 private:
  struct Cell {
    size_t messages = 0;
    size_t bytes = 0;
  };
  std::array<Cell, kMsgTypeCount> cells_{};
};

}  // namespace subsum::sim
