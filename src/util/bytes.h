// Binary serialization primitives shared by the summary wire format
// (core/serialize.*) and the TCP protocol (net/protocol.*).
//
// The format is little-endian. Unsigned integers may be written either
// fixed-width or as LEB128 varints; the summary format uses fixed widths so
// that measured sizes follow the paper's size equations (1) and (2), while
// the network protocol uses varints for compactness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace subsum::util {

/// Thrown by BufReader when the input is truncated or malformed.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte buffer with typed put_* operations.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(size_t reserve) { buf_.reserve(reserve); }

  void put_u8(uint8_t v) { buf_.push_back(std::byte{v}); }
  void put_u16(uint16_t v) { put_le(v); }
  void put_u32(uint32_t v) { put_le(v); }
  void put_u64(uint64_t v) { put_le(v); }
  void put_i64(int64_t v) { put_le(static_cast<uint64_t>(v)); }
  void put_f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// LEB128 unsigned varint (1..10 bytes).
  void put_varint(uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<uint8_t>(v));
  }

  /// Length-prefixed (varint) byte string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    put_bytes({reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }

  void put_bytes(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() && noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<uint8_t>(v >> (8 * i))});
    }
  }

  std::vector<std::byte> buf_;
};

/// Sequential reader over a byte span. Does not own the data.
class BufReader {
 public:
  explicit BufReader(std::span<const std::byte> data) : data_(data) {}

  uint8_t get_u8() { return static_cast<uint8_t>(take(1)[0]); }
  uint16_t get_u16() { return get_le<uint16_t>(); }
  uint32_t get_u32() { return get_le<uint32_t>(); }
  uint64_t get_u64() { return get_le<uint64_t>(); }
  int64_t get_i64() { return static_cast<int64_t>(get_le<uint64_t>()); }
  double get_f64() {
    uint64_t bits = get_le<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  uint64_t get_varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b = get_u8();
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw DecodeError("varint too long");
  }

  std::string get_string() {
    uint64_t n = get_varint();
    auto b = take(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  std::span<const std::byte> get_bytes(size_t n) { return take(n); }

  [[nodiscard]] size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T get_le() {
    auto b = take(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(static_cast<uint8_t>(b[i])) << (8 * i)));
    }
    return v;
  }

  std::span<const std::byte> take(size_t n) {
    if (remaining() < n) throw DecodeError("truncated input");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

/// Size in bytes of v when varint-encoded.
size_t varint_size(uint64_t v) noexcept;

}  // namespace subsum::util
