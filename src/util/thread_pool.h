// A small fixed-size thread pool (no external deps) for the batched
// matching engine and the parallel publish pipeline.
//
// Semantics are deliberately minimal: submit() enqueues a task, wait()
// blocks until every task submitted so far has finished. Tasks must not
// submit further tasks (no work stealing, no futures); parallel_for shards
// an index range into one contiguous chunk per worker, which is all the
// batch matcher needs and keeps the sharding deterministic.
//
// A pool of size 0 or 1 degrades to running everything inline on the
// calling thread, so callers can be written against the pool
// unconditionally and single-threaded runs stay exactly sequential.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace subsum::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 and 1 both mean "inline, no workers".
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (0 when running inline).
  [[nodiscard]] size_t size() const noexcept { return workers_.size(); }

  /// Effective parallelism: max(1, size()).
  [[nodiscard]] size_t concurrency() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Enqueues one task. With no workers the task runs inline immediately.
  /// Tasks must not call submit()/wait() on the same pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed. Exceptions thrown by
  /// tasks terminate (tasks are internal shards, not user callbacks).
  void wait();

  /// Runs fn(begin, end) over `n` indices split into `concurrency()`
  /// contiguous chunks, then waits. The chunk boundaries depend only on
  /// n and the pool size, so the sharding is deterministic.
  void parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn);

  [[nodiscard]] static size_t hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // signals workers: queue non-empty / stop
  std::condition_variable cv_idle_;   // signals wait(): everything drained
  std::vector<std::function<void()>> queue_;  // FIFO via head index
  size_t queue_head_ = 0;
  size_t in_flight_ = 0;  // queued + currently-executing tasks
  bool stop_ = false;
};

}  // namespace subsum::util
