// Small string helpers used by SACS covering checks and pretty-printing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace subsum::util {

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;
bool contains(std::string_view s, std::string_view needle) noexcept;

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Format a double the way values appear in events (trim trailing zeros).
std::string format_number(double v);

}  // namespace subsum::util
