// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every durable record and snapshot in src/store. CRC-32C
// is the standard choice for storage framing (iSCSI, ext4, LevelDB WALs)
// because it detects all burst errors up to 32 bits and has hardware
// support on most ISAs; this is the portable table-driven form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace subsum::util {

/// CRC-32C of `data`, continuing from `seed` (pass a previous result to
/// checksum discontiguous pieces as one stream; 0 starts fresh).
uint32_t crc32c(std::span<const std::byte> data, uint32_t seed = 0) noexcept;

}  // namespace subsum::util
