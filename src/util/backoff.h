// Retry pacing for unreliable peers: exponential backoff with decorrelated
// jitter ("sleep = min(cap, uniform(base, 3*prev))"), a hard attempt cap,
// and deterministic delays given the seed so tests can pin schedules.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

#include "util/rng.h"

namespace subsum::util {

struct BackoffPolicy {
  std::chrono::milliseconds base{10};  // first retry delay lower bound
  std::chrono::milliseconds cap{500};  // upper bound for any single delay
  int max_attempts = 3;                // total tries, including the first

  friend bool operator==(const BackoffPolicy&, const BackoffPolicy&) = default;
};

/// Tracks one operation's retry schedule. Usage:
///
///   Backoff b(policy, seed);
///   for (;;) {
///     try { return op(); }
///     catch (...) {
///       auto d = b.next_delay();
///       if (!d) throw;                      // attempts exhausted
///       std::this_thread::sleep_for(*d);
///     }
///   }
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 0) noexcept;

  /// Delay to sleep before the next retry; nullopt once max_attempts tries
  /// have been handed out. Every returned delay is in [base, cap].
  std::optional<std::chrono::milliseconds> next_delay() noexcept;

  /// Like next_delay(), but the result is raised to at least `floor` — a
  /// server-supplied retry-after hint. The floor deliberately overrides
  /// the policy cap (the server knows when it will accept work again), and
  /// the raised value feeds the decorrelated-jitter state, so subsequent
  /// delays grow from the hint instead of collapsing back to base.
  /// Callers cap the hint themselves (e.g. ClientOptions::retry_after_ceiling).
  std::optional<std::chrono::milliseconds> next_delay(std::chrono::milliseconds floor) noexcept;

  /// Tries started so far (1 after construction: the first is underway).
  [[nodiscard]] int attempts_started() const noexcept { return attempt_; }

  void reset() noexcept;

 private:
  BackoffPolicy policy_;
  Rng rng_;
  uint64_t seed_;
  std::chrono::milliseconds prev_;
  int attempt_ = 1;
};

/// Runs `fn` up to policy.max_attempts times, sleeping the backoff delay
/// between tries. Retries only on exceptions derived from `E`; the last
/// failure is rethrown once attempts are exhausted.
template <typename E, typename F>
auto retry(const BackoffPolicy& policy, uint64_t seed, F&& fn) {
  Backoff backoff(policy, seed);
  for (;;) {
    try {
      return fn();
    } catch (const E&) {
      const auto delay = backoff.next_delay();
      if (!delay) throw;
      std::this_thread::sleep_for(*delay);
    }
  }
}

}  // namespace subsum::util
