#include "util/thread_pool.h"

#include <algorithm>

namespace subsum::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait() {
  if (workers_.empty()) return;
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn) {
  const size_t shards = std::min(concurrency(), std::max<size_t>(n, 1));
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(begin + chunk, n);
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || queue_head_ < queue_.size(); });
      if (queue_head_ == queue_.size()) return;  // stop_ and drained
      task = std::move(queue_[queue_head_++]);
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    task();
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace subsum::util
