#include "util/crc32c.h"

#include <array>

namespace subsum::util {

namespace {

// Slice-by-4: four 256-entry tables computed once at startup. Processes
// 4 input bytes per iteration, ~3x a plain byte-at-a-time loop — plenty for
// WAL records that are also being fsync'd.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() noexcept {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

}  // namespace

uint32_t crc32c(std::span<const std::byte> data, uint32_t seed) noexcept {
  const auto& t = tables().t;
  uint32_t crc = ~seed;
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^ t[1][(crc >> 16) & 0xFF] ^
          t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

}  // namespace subsum::util
