#include "util/rng.h"

#include <cmath>

namespace subsum::util {

namespace {

uint64_t splitmix64(uint64_t& state) noexcept {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) noexcept {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next() noexcept {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::range_i64(int64_t lo, int64_t hi) noexcept {
  return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::range_f64(double lo, double hi) noexcept {
  return lo + uniform01() * (hi - lo);
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

uint64_t Rng::poisson(double mean) noexcept {
  if (!(mean > 0.0)) return 0;
  if (mean < 30.0) {
    // Knuth: count uniforms until their product drops below e^-mean.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    uint64_t k = 0;
    do {
      ++k;
      prod *= uniform01();
    } while (prod > limit);
    return k - 1;
  }
  // Normal approximation via Box-Muller; fine at these means for workloads.
  const double u1 = std::max(uniform01(), 0x1.0p-53);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = mean + std::sqrt(mean) * z;
  return v <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(v));
}

std::string Rng::ascii_lower(size_t len) {
  std::string s(len, 'a');
  for (auto& c : s) c = static_cast<char>('a' + below(26));
  return s;
}

Rng Rng::split() noexcept { return Rng(next()); }

Zipf::Zipf(size_t n, double s) {
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  size_t lo = 0, hi = cdf_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid - 1] <= u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace subsum::util
