// Deterministic pseudo-random generation for workloads, benches and
// property tests. xoshiro256** seeded via splitmix64: fast, reproducible
// across platforms (unlike std::default_random_engine), and good enough
// statistically for simulation workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace subsum::util {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  uint64_t next() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t below(uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  int64_t range_i64(int64_t lo, int64_t hi) noexcept;

  /// Uniform in [0, 1).
  double uniform01() noexcept;

  /// Uniform in [lo, hi).
  double range_f64(double lo, double hi) noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Poisson-distributed count with the given mean. Knuth's product
  /// method below mean 30, normal approximation (rounded, clamped at 0)
  /// above — deterministic for a given generator state either way.
  uint64_t poisson(double mean) noexcept;

  /// Random lowercase ASCII string of the given length.
  std::string ascii_lower(size_t len);

  /// Split off an independent stream (for parallel deterministic workloads).
  Rng split() noexcept;

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, .., n-1}; rank 0 is most popular.
/// Uses the inverse-CDF over a precomputed table (n is small in our
/// workloads, so O(log n) per sample via binary search).
class Zipf {
 public:
  Zipf(size_t n, double s);
  size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace subsum::util
