#include "util/bytes.h"

namespace subsum::util {

size_t varint_size(uint64_t v) noexcept {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace subsum::util
