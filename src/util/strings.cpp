#include "util/strings.h"

#include <cstdio>

namespace subsum::util {

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) noexcept {
  return s.find(needle) != std::string_view::npos;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace subsum::util
