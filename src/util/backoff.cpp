#include "util/backoff.h"

#include <algorithm>

namespace subsum::util {

Backoff::Backoff(const BackoffPolicy& policy, uint64_t seed) noexcept
    : policy_(policy), rng_(seed), seed_(seed), prev_(policy.base) {}

std::optional<std::chrono::milliseconds> Backoff::next_delay() noexcept {
  if (attempt_ >= policy_.max_attempts) return std::nullopt;
  ++attempt_;
  const int64_t lo = std::max<int64_t>(0, policy_.base.count());
  const int64_t hi = std::max(lo, prev_.count() * 3);
  int64_t delay = lo;
  if (hi > lo) delay += static_cast<int64_t>(rng_.below(static_cast<uint64_t>(hi - lo + 1)));
  delay = std::min(delay, policy_.cap.count());
  prev_ = std::chrono::milliseconds(delay);
  return prev_;
}

std::optional<std::chrono::milliseconds> Backoff::next_delay(
    std::chrono::milliseconds floor) noexcept {
  auto d = next_delay();
  if (!d) return d;
  if (*d < floor) {
    prev_ = floor;  // jitter state follows the hint, not the collapsed delay
    return floor;
  }
  return d;
}

void Backoff::reset() noexcept {
  rng_ = Rng(seed_);
  prev_ = policy_.base;
  attempt_ = 1;
}

}  // namespace subsum::util
