#include "siena/poset.h"

#include <algorithm>

namespace subsum::siena {

bool CoverTable::add(const model::OwnedSubscription& sub) {
  if (is_covered(sub.sub)) return false;
  std::erase_if(entries_, [&](const model::OwnedSubscription& e) {
    return covers(sub.sub, e.sub, *schema_);
  });
  entries_.push_back(sub);
  return true;
}

bool CoverTable::is_covered(const model::Subscription& sub) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const model::OwnedSubscription& e) {
    return covers(e.sub, sub, *schema_);
  });
}

std::vector<model::SubId> CoverTable::match(const model::Event& e) const {
  std::vector<model::SubId> out;
  for (const auto& entry : entries_) {
    if (entry.sub.matches(e)) out.push_back(entry.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace subsum::siena
