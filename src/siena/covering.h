// Subscription-level covering (subsumption), the fundamental notion of the
// Siena comparator (paper §2.2): subscription A covers B iff every event
// matching B also matches A. The test is sound but deliberately incomplete
// (returns false when a cheap proof is unavailable), which only makes the
// comparator forward/store more — i.e. it never cheats in Siena's favour is
// false; it errs AGAINST subsumption savings, matching how the paper models
// Siena probabilistically anyway.
#pragma once

#include "core/interval.h"
#include "core/string_constraint.h"
#include "model/subscription.h"

namespace subsum::siena {

/// sat(b) ⊆ sat(a), provably.
bool covers(const model::Subscription& a, const model::Subscription& b,
            const model::Schema& schema);

/// Interval-set inclusion helper: b ⊆ a.
bool interval_subset(const core::IntervalSet& b, const core::IntervalSet& a);

}  // namespace subsum::siena
