// The Siena-style comparator (paper §2.2, §5.2).
//
// Two layers:
//
//  1. SienaNetwork — a REAL implementation of subsumption-based subscription
//     propagation and reverse-path event routing: subscriptions flood from
//     their home broker neighbor-to-neighbor, cut off wherever a previously
//     forwarded subscription covers them; each broker keeps per-interface
//     tables, and events follow the reverse subscription paths. Used by
//     tests, examples and ablations.
//
//  2. The PROBABILISTIC model of §5.2 used for the paper's figures: each
//     broker drops (as "subsumed") each subscription it would forward with
//     probability  p_B = p_max * degree(B) / max_degree.  The paper states
//     only p_max; propagate_model reproduces its accounting of messages,
//     bytes and per-broker storage, and event_hops_model reproduces Siena's
//     reverse-path hop count as the union of tree paths from the publisher
//     to the matched brokers.
#pragma once

#include <map>
#include <vector>

#include "model/event.h"
#include "model/subscription.h"
#include "overlay/graph.h"
#include "overlay/spanning_tree.h"
#include "siena/poset.h"
#include "util/rng.h"

namespace subsum::siena {

/// Approximate wire size of one subscription (1-byte attr + 1-byte op +
/// value bytes per constraint, plus the id). The paper uses a flat average
/// of 50 bytes; this lets the real layer charge actual sizes.
size_t subscription_wire_bytes(const model::Subscription& sub, size_t sid_bytes = 4);

// ---------------------------------------------------------------------------
// Layer 1: real mechanism
// ---------------------------------------------------------------------------

class SienaNetwork {
 public:
  SienaNetwork(const model::Schema& schema, const overlay::Graph& g);

  struct SubscribeStats {
    size_t messages = 0;  // subscription-forward hops
    size_t bytes = 0;     // Σ message sizes
  };

  /// Installs a subscription at its home broker and propagates it with
  /// covering cut-offs. sub.id.broker must equal `home`.
  SubscribeStats subscribe(overlay::BrokerId home, const model::OwnedSubscription& sub);

  struct PublishResult {
    std::vector<model::SubId> delivered;  // sorted ids of all matched subs
    size_t forward_hops = 0;              // event messages between brokers
    [[nodiscard]] size_t total_hops() const noexcept { return forward_hops; }
  };

  /// Publishes an event; it follows the reverse subscription paths.
  PublishResult publish(overlay::BrokerId origin, const model::Event& event);

  /// Total subscriptions stored across all brokers (own + interface tables).
  [[nodiscard]] size_t stored_entries() const noexcept;
  [[nodiscard]] size_t stored_bytes(size_t sid_bytes = 4) const noexcept;

 private:
  struct Broker {
    CoverTable own;                                   // local clients' subs
    std::map<overlay::BrokerId, CoverTable> from;     // per-interface tables
    std::map<overlay::BrokerId, CoverTable> sent_to;  // covering cut-off state
    explicit Broker(const model::Schema& s) : own(s) {}
  };

  void forward_subscription(overlay::BrokerId at, overlay::BrokerId via,
                            const model::OwnedSubscription& sub, SubscribeStats& stats);

  const model::Schema* schema_;
  const overlay::Graph* graph_;
  std::vector<Broker> brokers_;
};

// ---------------------------------------------------------------------------
// Layer 2: the paper's probabilistic model
// ---------------------------------------------------------------------------

struct ModelParams {
  double max_subsumption = 0.1;  // the figure legends' "Subsumption = x%"
  size_t avg_sub_bytes = 50;     // table 2: average subscription size
};

struct PropModelResult {
  size_t messages = 0;                   // subscription-forward hops
  size_t bytes = 0;                      // messages * avg_sub_bytes
  std::vector<size_t> stored_per_broker;  // subscription copies at each broker
  [[nodiscard]] size_t stored_total() const noexcept;
};

/// σ subscriptions per broker propagate over each home broker's BFS tree
/// with per-broker probabilistic subsumption cut-off.
PropModelResult propagate_model(const overlay::Graph& g, size_t sigma_per_broker,
                                const ModelParams& params, util::Rng& rng);

/// Siena's event hop count to reach `matched` from `origin`: tree edges in
/// the union of reverse paths.
size_t event_hops_model(const overlay::SpanningTree& tree,
                        const std::vector<overlay::BrokerId>& matched);

}  // namespace subsum::siena
