#include "siena/covering.h"

namespace subsum::siena {

using core::IntervalSet;
using core::StringPattern;
using model::AttrId;

bool interval_subset(const IntervalSet& b, const IntervalSet& a) {
  return b.intersect(a) == b;
}

namespace {

IntervalSet arith_region(const model::Subscription& s, AttrId attr) {
  IntervalSet region = IntervalSet::all();
  for (const auto& c : s.constraints()) {
    if (c.attr != attr) continue;
    region = region.intersect(IntervalSet::from_constraint(c.op, c.operand.as_number()));
  }
  return region;
}

}  // namespace

bool covers(const model::Subscription& a, const model::Subscription& b,
            const model::Schema& schema) {
  // Every attribute a constrains must be constrained by b at least as
  // tightly; b may constrain extra attributes (making it narrower).
  if ((b.mask() & a.mask()) != a.mask()) return false;

  for (AttrId attr = 0; attr < schema.attr_count(); ++attr) {
    if (!(a.mask() & model::attr_bit(attr))) continue;
    if (is_arithmetic(schema.type_of(attr))) {
      if (!interval_subset(arith_region(b, attr), arith_region(a, attr))) return false;
    } else {
      // For each pattern of a there must be a pattern of b that it provably
      // covers: sat(b on attr) ⊆ sat(pb) ⊆ sat(pa).
      for (const auto& ca : a.constraints()) {
        if (ca.attr != attr) continue;
        const StringPattern pa{ca.op, ca.operand.as_string()};
        bool proven = false;
        for (const auto& cb : b.constraints()) {
          if (cb.attr != attr) continue;
          const StringPattern pb{cb.op, cb.operand.as_string()};
          if (core::covers(pa, pb)) {
            proven = true;
            break;
          }
        }
        if (!proven) return false;
      }
    }
  }
  return true;
}

}  // namespace subsum::siena
