// A broker-local table of subscriptions ordered by covering, as used by
// Siena-style brokers: a newly arriving subscription is dropped (not
// stored, not forwarded further on an interface) when an already-known
// subscription covers it.
#pragma once

#include <vector>

#include "model/subscription.h"
#include "siena/covering.h"

namespace subsum::siena {

class CoverTable {
 public:
  explicit CoverTable(const model::Schema& schema) : schema_(&schema) {}

  /// Inserts unless an existing entry covers `sub`. Returns true if the
  /// subscription was inserted (i.e. it must be processed further).
  /// Entries that the new subscription covers are pruned.
  bool add(const model::OwnedSubscription& sub);

  /// True if some stored subscription covers `sub`.
  [[nodiscard]] bool is_covered(const model::Subscription& sub) const;

  /// Stored (maximal) subscriptions.
  [[nodiscard]] const std::vector<model::OwnedSubscription>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }

  /// Ids of stored subscriptions matching the event, sorted.
  [[nodiscard]] std::vector<model::SubId> match(const model::Event& e) const;

 private:
  const model::Schema* schema_;
  std::vector<model::OwnedSubscription> entries_;
};

}  // namespace subsum::siena
