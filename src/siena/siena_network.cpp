#include "siena/siena_network.h"

#include <algorithm>
#include <stdexcept>

namespace subsum::siena {

using model::OwnedSubscription;
using overlay::BrokerId;

size_t subscription_wire_bytes(const model::Subscription& sub, size_t sid_bytes) {
  size_t n = sid_bytes;
  for (const auto& c : sub.constraints()) {
    n += 2;  // attribute id + operator
    if (c.operand.type() == model::AttrType::kString) {
      n += 1 + c.operand.as_string().size();
    } else {
      n += 8;
    }
  }
  return n;
}

SienaNetwork::SienaNetwork(const model::Schema& schema, const overlay::Graph& g)
    : schema_(&schema), graph_(&g) {
  brokers_.reserve(g.size());
  for (size_t i = 0; i < g.size(); ++i) brokers_.emplace_back(schema);
}

SienaNetwork::SubscribeStats SienaNetwork::subscribe(BrokerId home,
                                                     const OwnedSubscription& sub) {
  if (sub.id.broker != home) {
    throw std::invalid_argument("subscription id c1 must equal the home broker");
  }
  SubscribeStats stats;
  brokers_.at(home).own.add(sub);
  forward_subscription(home, home, sub, stats);
  return stats;
}

void SienaNetwork::forward_subscription(BrokerId at, BrokerId via,
                                        const OwnedSubscription& sub,
                                        SubscribeStats& stats) {
  Broker& b = brokers_[at];
  for (BrokerId nb : graph_->neighbors(at)) {
    if (nb == via && at != via) continue;  // never send back where it came from
    auto [it, inserted] = b.sent_to.try_emplace(nb, *schema_);
    CoverTable& sent = it->second;
    (void)inserted;
    if (!sent.add(sub)) continue;  // a covering subscription already went this way
    ++stats.messages;
    stats.bytes += subscription_wire_bytes(sub.sub);
    // Receive at nb: record the arrival interface; keep flooding only if the
    // subscription is not covered there either.
    Broker& r = brokers_[nb];
    auto [jt, created] = r.from.try_emplace(at, *schema_);
    (void)created;
    if (jt->second.add(sub)) {
      forward_subscription(nb, at, sub, stats);
    }
  }
}

SienaNetwork::PublishResult SienaNetwork::publish(BrokerId origin, const model::Event& event) {
  PublishResult out;
  // Depth-first reverse-path flood. Sentinel `via == at` at the origin.
  struct Frame {
    BrokerId at, via;
  };
  std::vector<Frame> stack{{origin, origin}};
  std::vector<char> seen(graph_->size(), 0);  // guards against cyclic tables
  seen[origin] = 1;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Broker& b = brokers_[f.at];
    const auto local = b.own.match(event);
    out.delivered.insert(out.delivered.end(), local.begin(), local.end());
    for (const auto& [nb, table] : b.from) {
      if (nb == f.via && f.at != f.via) continue;
      if (seen[nb]) continue;
      if (table.match(event).empty()) continue;
      seen[nb] = 1;
      ++out.forward_hops;
      stack.push_back({nb, f.at});
    }
  }
  std::sort(out.delivered.begin(), out.delivered.end());
  out.delivered.erase(std::unique(out.delivered.begin(), out.delivered.end()),
                      out.delivered.end());
  return out;
}

size_t SienaNetwork::stored_entries() const noexcept {
  size_t n = 0;
  for (const auto& b : brokers_) {
    n += b.own.size();
    for (const auto& [nb, t] : b.from) {
      (void)nb;
      n += t.size();
    }
  }
  return n;
}

size_t SienaNetwork::stored_bytes(size_t sid_bytes) const noexcept {
  size_t n = 0;
  for (const auto& b : brokers_) {
    for (const auto& e : b.own.entries()) n += subscription_wire_bytes(e.sub, sid_bytes);
    for (const auto& [nb, t] : b.from) {
      (void)nb;
      for (const auto& e : t.entries()) n += subscription_wire_bytes(e.sub, sid_bytes);
    }
  }
  return n;
}

size_t PropModelResult::stored_total() const noexcept {
  size_t n = 0;
  for (size_t s : stored_per_broker) n += s;
  return n;
}

PropModelResult propagate_model(const overlay::Graph& g, size_t sigma_per_broker,
                                const ModelParams& params, util::Rng& rng) {
  const size_t n = g.size();
  const double max_deg = static_cast<double>(g.max_degree());
  PropModelResult r;
  r.stored_per_broker.assign(n, 0);

  for (BrokerId home = 0; home < n; ++home) {
    const auto tree = overlay::bfs_tree(g, home);
    for (size_t s = 0; s < sigma_per_broker; ++s) {
      r.stored_per_broker[home] += 1;  // the home copy
      // Walk the tree; each broker drops the subscription toward each child
      // with its own subsumption probability.
      std::vector<BrokerId> frontier{home};
      while (!frontier.empty()) {
        const BrokerId at = frontier.back();
        frontier.pop_back();
        const double p = params.max_subsumption *
                         (static_cast<double>(g.degree(at)) / max_deg);
        for (BrokerId child : tree.children[at]) {
          if (rng.chance(p)) continue;  // subsumed: not forwarded
          ++r.messages;
          r.stored_per_broker[child] += 1;
          frontier.push_back(child);
        }
      }
    }
  }
  r.bytes = r.messages * params.avg_sub_bytes;
  return r;
}

size_t event_hops_model(const overlay::SpanningTree& tree,
                        const std::vector<BrokerId>& matched) {
  return tree.steiner_edges(matched);
}

}  // namespace subsum::siena
